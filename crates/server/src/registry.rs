//! Model registry: named snapshots served lazily from a directory under
//! a resident-memory budget, swapped atomically, hot-reloadable.
//!
//! A registry watches one directory of `*.snapshot` files (the buffers
//! written by `SynthesisSnapshot::to_bytes`). Each file's stem is the
//! model's name — restricted to `[A-Za-z0-9._-]` so names embed directly
//! in request paths with no escaping.
//!
//! ## Cheap metadata, lazy weights
//!
//! Scanning (open and every [`Registry::reload`]) never decodes weight
//! payloads: each file is *peeked* through
//! [`SnapshotHeader::peek_file`], which reads only the leading frames —
//! geometry, the recomputed (ε, δ) stamp, the synthesizer's class count
//! — plus the `(length, mtime)` fingerprint. A directory of a thousand
//! tenants registers in a thousand small reads; listings
//! ([`Registry::list_headers`]) are served entirely from these headers.
//!
//! Weights decode on first [`Registry::get`] — **single-flight**: N
//! concurrent first requests block on one decode (bounded by the
//! configured [`RegistryConfig::load_wait`]), never duplicate it. The
//! decode runs the full checksummed `p3gm-store` path, so corruption the
//! header peek cannot see (the CRC trails the weights) still fails
//! typed on first touch, is cached as [`RegistryError::DecodeFailed`]
//! until the file changes, and un-poisons itself when a repaired file
//! (new fingerprint) is reloaded.
//!
//! ## Residency budget
//!
//! An optional [`RegistryConfig::max_resident_bytes`] bounds decoded
//! weights: when a load pushes estimated residency (from header
//! geometry, see [`ModelHeader::approx_resident_bytes`]) past the
//! budget, least-recently-used models are evicted back to `Unloaded`.
//! Eviction only drops the registry's own `Arc<LoadedModel>`; requests
//! already holding a handle — including **streamed** sampling responses,
//! whose chunked body generator owns its `Arc` for the whole response —
//! keep sampling the evicted model until the last handle drops, so
//! eviction (like reload) can never yank a model mid-chunk. A later
//! `get` simply decodes the file again.
//!
//! Reload is incremental: files whose `(length, mtime)` fingerprint is
//! unchanged keep their existing entry (loaded weights stay resident),
//! new and changed files are re-peeked, entries whose file disappeared
//! are dropped, and a file that fails the header peek **keeps the
//! previous entry serving** (a half-written upload must not take down a
//! live model) while the failure is reported in the [`ReloadReport`].

use p3gm_core::snapshot::{SnapshotHeader, SynthesisSnapshot};
use p3gm_privacy::rdp::PrivacySpec;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// File extension a registry directory entry must carry to be considered
/// a model snapshot.
pub const SNAPSHOT_EXTENSION: &str = "snapshot";

/// Tuning knobs for a [`Registry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Soft ceiling on the estimated bytes of decoded model weights kept
    /// resident. `None` disables eviction (every model loaded stays
    /// until its file changes or disappears). The estimate comes from
    /// header geometry, so actual RSS tracks but does not equal it; the
    /// ceiling is enforced after each load by evicting least-recently-
    /// used models — except the one just loaded, which always serves.
    pub max_resident_bytes: Option<u64>,
    /// How long a [`Registry::get`] waits for another request's
    /// in-flight decode of the same model before giving up with
    /// [`RegistryError::LoadTimeout`].
    pub load_wait: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            max_resident_bytes: None,
            load_wait: Duration::from_secs(30),
        }
    }
}

/// Why [`Registry::get`] could not produce a serving model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No snapshot by that name is registered.
    NotFound,
    /// The snapshot file failed its full checksummed decode on first
    /// touch. Cached until the file's fingerprint changes (repair +
    /// reload un-poisons the entry).
    DecodeFailed(String),
    /// Another request's decode of this model did not finish within
    /// [`RegistryConfig::load_wait`].
    LoadTimeout,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound => write!(f, "no such model"),
            RegistryError::DecodeFailed(reason) => {
                write!(f, "model snapshot failed to decode: {reason}")
            }
            RegistryError::LoadTimeout => {
                write!(f, "timed out waiting for the model to finish loading")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One loaded, serving model.
#[derive(Debug)]
pub struct LoadedModel {
    name: String,
    snapshot: SynthesisSnapshot,
}

impl LoadedModel {
    /// The model's name (the snapshot file's stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The decoded snapshot.
    pub fn snapshot(&self) -> &SynthesisSnapshot {
        &self.snapshot
    }
}

/// The change-detection fingerprint of a snapshot file: byte length and
/// modification time (nanoseconds since the epoch; 0 when the filesystem
/// does not report one).
type Fingerprint = (u64, u128);

/// Everything the registry knows about a model without decoding its
/// weights: identity, file fingerprint, and the peeked snapshot header.
#[derive(Debug)]
pub struct ModelHeader {
    name: String,
    path: PathBuf,
    fingerprint: Fingerprint,
    header: SnapshotHeader,
}

impl ModelHeader {
    /// The model's name (the snapshot file's stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensionality of the generated rows.
    pub fn data_dim(&self) -> usize {
        self.header.data_dim
    }

    /// The model's latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.header.config.latent_dim
    }

    /// Classes of the attached labelled synthesizer, `None` when the
    /// snapshot carries none.
    pub fn n_classes(&self) -> Option<usize> {
        self.header.n_classes
    }

    /// The (ε, δ)-DP stamp recomputed from the persisted configuration —
    /// identical to what the full decode reports.
    pub fn stamp(&self) -> Option<&PrivacySpec> {
        self.header.stamp.as_ref()
    }

    /// Estimated bytes this model occupies once decoded, from header
    /// geometry — the cost the residency budget charges for it.
    pub fn approx_resident_bytes(&self) -> u64 {
        self.header.approx_resident_bytes()
    }
}

/// Residency state of one registered model.
#[derive(Debug)]
enum LoadState {
    /// Header known, weights not resident.
    Unloaded,
    /// A request is decoding the file right now; others wait on the
    /// entry's condvar.
    Loading,
    /// Weights resident; `cost` is what the budget was charged.
    Loaded { model: Arc<LoadedModel>, cost: u64 },
    /// The full decode failed; cached until the file changes.
    Failed { reason: String },
}

/// One registered model: immutable header plus mutable residency state.
#[derive(Debug)]
struct ModelEntry {
    header: Arc<ModelHeader>,
    state: Mutex<LoadState>,
    loaded_cond: Condvar,
    /// Logical timestamp of the last `get`, from the registry clock —
    /// the LRU ordering key.
    last_used: AtomicU64,
}

/// What one [`Registry::reload`] (or the initial scan) did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReloadReport {
    /// Models registered from new or changed files (header peeked;
    /// weights decode lazily on first request).
    pub loaded: Vec<String>,
    /// Models whose files were unchanged (entry kept; resident weights
    /// stay resident).
    pub unchanged: Vec<String>,
    /// Models dropped because their file disappeared.
    pub removed: Vec<String>,
    /// Files that could not be registered, with the reason. The previous
    /// entry (if any) keeps serving.
    pub failed: Vec<(String, String)>,
}

/// A point-in-time snapshot of the registry's residency counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Registered models (headers).
    pub models: u64,
    /// Models whose weights are currently resident.
    pub resident_models: u64,
    /// Estimated bytes of resident weights (sum of per-model costs).
    pub resident_bytes: u64,
    /// The configured ceiling, 0 when eviction is disabled.
    pub max_resident_bytes: u64,
    /// Full weight decodes performed (initial loads and re-loads after
    /// eviction).
    pub loads: u64,
    /// Models evicted back to `Unloaded` by the budget.
    pub evictions: u64,
    /// `get` calls served from already-resident weights.
    pub hits: u64,
    /// `get` calls that had to decode (or wait on a decode).
    pub misses: u64,
    /// Full decodes that failed.
    pub load_failures: u64,
    /// Snapshot files whose header frames were read from disk (initial
    /// scan + reloads). Reload is incremental: files whose `(len,
    /// mtime)` fingerprint is unchanged are **not** re-peeked, so this
    /// counter grows only by the number of new or changed files — a
    /// no-change `POST /reload` over a thousand tenants leaves it flat.
    pub header_peeks: u64,
}

/// A directory of named snapshots: headers eagerly peeked, weights
/// lazily decoded behind atomically-swappable `Arc` handles.
#[derive(Debug)]
pub struct Registry {
    dir: PathBuf,
    config: RegistryConfig,
    entries: RwLock<BTreeMap<String, Arc<ModelEntry>>>,
    /// Serializes [`Registry::reload`] runs: peeking happens outside the
    /// `entries` lock, so without this two concurrent reloads could
    /// interleave scan/peek/swap and re-insert a model whose file a
    /// faster reload already saw deleted.
    reload_lock: Mutex<()>,
    /// Monotonic logical clock stamping `last_used` on every `get`.
    clock: AtomicU64,
    resident_bytes: AtomicU64,
    loads: AtomicU64,
    evictions: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    load_failures: AtomicU64,
    header_peeks: AtomicU64,
}

impl Registry {
    /// Opens a registry over `dir` with default tuning and performs the
    /// initial header scan (no weight payload is decoded).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<(Registry, ReloadReport)> {
        Registry::open_with(dir, RegistryConfig::default())
    }

    /// Opens a registry over `dir` with explicit tuning and performs the
    /// initial header scan (no weight payload is decoded).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        config: RegistryConfig,
    ) -> std::io::Result<(Registry, ReloadReport)> {
        let registry = Registry {
            dir: dir.into(),
            config,
            entries: RwLock::new(BTreeMap::new()),
            reload_lock: Mutex::new(()),
            clock: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            header_peeks: AtomicU64::new(0),
        };
        let report = registry.reload()?;
        Ok((registry, report))
    }

    /// The directory being served.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A serving handle for a named model, decoding the snapshot on
    /// first touch (single-flight: concurrent first requests share one
    /// decode). The returned `Arc` keeps the model alive across
    /// concurrent reloads **and evictions** — the registry dropping its
    /// reference never invalidates a handle already serving a request.
    pub fn get(&self, name: &str) -> Result<Arc<LoadedModel>, RegistryError> {
        let entry = {
            let entries = self
                .entries
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            entries.get(name).cloned().ok_or(RegistryError::NotFound)?
        };
        entry.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );

        let mut state = entry
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            match &*state {
                LoadState::Loaded { model, .. } => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(model));
                }
                LoadState::Failed { reason } => {
                    return Err(RegistryError::DecodeFailed(reason.clone()));
                }
                LoadState::Loading => {
                    let (next, wait) = entry
                        .loaded_cond
                        .wait_timeout(state, self.config.load_wait)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state = next;
                    if wait.timed_out() && matches!(&*state, LoadState::Loading) {
                        return Err(RegistryError::LoadTimeout);
                    }
                }
                LoadState::Unloaded => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    *state = LoadState::Loading;
                    drop(state);
                    // Decode outside the entry lock so waiters can block
                    // on the condvar and the registry stays responsive.
                    let decoded = load_model(&entry.header);
                    let mut state = entry
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let result = match decoded {
                        Ok(model) => {
                            let model = Arc::new(model);
                            let cost = entry.header.approx_resident_bytes();
                            self.loads.fetch_add(1, Ordering::Relaxed);
                            self.resident_bytes.fetch_add(cost, Ordering::Relaxed);
                            *state = LoadState::Loaded {
                                model: Arc::clone(&model),
                                cost,
                            };
                            Ok(model)
                        }
                        Err(reason) => {
                            self.load_failures.fetch_add(1, Ordering::Relaxed);
                            *state = LoadState::Failed {
                                reason: reason.clone(),
                            };
                            Err(RegistryError::DecodeFailed(reason))
                        }
                    };
                    entry.loaded_cond.notify_all();
                    drop(state);
                    if result.is_ok() {
                        self.enforce_budget(name);
                    }
                    return result;
                }
            }
        }
    }

    /// Evicts least-recently-used resident models until estimated
    /// residency fits the budget. `protect` (the model just loaded) is
    /// never evicted — the budget is soft by exactly one model, so a
    /// `get` can always serve.
    fn enforce_budget(&self, protect: &str) {
        let Some(budget) = self.config.max_resident_bytes else {
            return;
        };
        while self.resident_bytes.load(Ordering::Relaxed) > budget {
            let victim = {
                let entries = self
                    .entries
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                entries
                    .iter()
                    .filter(|(name, _)| name.as_str() != protect)
                    .filter(|(_, e)| {
                        matches!(
                            &*e.state
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner),
                            LoadState::Loaded { .. }
                        )
                    })
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                    .map(|(_, e)| Arc::clone(e))
            };
            let Some(victim) = victim else {
                // Nothing evictable (only the protected model is
                // resident): the budget over-run rides until handles
                // drop naturally.
                return;
            };
            let mut state = victim
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Re-check under the lock: a racing `get` may have touched
            // the entry, but evicting it is still safe — its handle
            // keeps the model alive; only the registry's copy drops.
            if let LoadState::Loaded { cost, .. } = &*state {
                let cost = *cost;
                *state = LoadState::Unloaded;
                drop(state);
                self.resident_bytes.fetch_sub(cost, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The peeked header for a named model, if registered. Never decodes
    /// or touches weight payloads.
    pub fn header(&self, name: &str) -> Option<Arc<ModelHeader>> {
        self.entries
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .map(|e| Arc::clone(&e.header))
    }

    /// Headers for every registered model, sorted by name. Listing is
    /// metadata-only: no weight payload is decoded or cloned.
    pub fn list_headers(&self) -> Vec<Arc<ModelHeader>> {
        self.entries
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(|e| Arc::clone(&e.header))
            .collect()
    }

    /// Whether a model's weights are currently resident (decoded and
    /// held by the registry).
    pub fn is_resident(&self, name: &str) -> bool {
        let entry = {
            let entries = self
                .entries
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            entries.get(name).cloned()
        };
        entry.is_some_and(|e| {
            matches!(
                &*e.state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
                LoadState::Loaded { .. }
            )
        })
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of the residency counters.
    ///
    /// This is the **single** read path every stats surface
    /// (`GET /stats`, `GET /metrics`, `ServerHandle::registry_stats`)
    /// flows through. The counters are independent relaxed atomics read
    /// one after another, so a snapshot taken during concurrent loads or
    /// evictions may *tear across fields* — e.g. a `loads` increment
    /// visible while the matching `resident_bytes` update is not. Each
    /// field is individually exact and monotone counters never go
    /// backwards; the tear is accepted because stats are diagnostics,
    /// not invariants, and a consistent cut would put a lock on the
    /// request hot path.
    pub fn stats(&self) -> RegistryStats {
        let (models, resident_models) = {
            let entries = self
                .entries
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let resident = entries
                .values()
                .filter(|e| {
                    matches!(
                        &*e.state
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                        LoadState::Loaded { .. }
                    )
                })
                .count() as u64;
            (entries.len() as u64, resident)
        };
        RegistryStats {
            models,
            resident_models,
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            max_resident_bytes: self.config.max_resident_bytes.unwrap_or(0),
            loads: self.loads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
            header_peeks: self.header_peeks.load(Ordering::Relaxed),
        }
    }

    /// Rescans the directory and atomically applies the changes —
    /// **header-only**: validation peeks the leading frames of new and
    /// changed files, decoding no weight payload.
    ///
    /// Peeking happens **outside** the write lock: requests keep being
    /// served from the current map while new headers validate, and the
    /// final swap is a brief lock that moves `Arc`s. Unchanged files
    /// keep their entry (resident weights stay resident); a changed
    /// file's entry resets to `Unloaded` — including one parked in
    /// `Failed`, so repairing a corrupt file and reloading un-poisons
    /// it. Returns what changed; `Err` only when the directory itself
    /// cannot be listed.
    pub fn reload(&self) -> std::io::Result<ReloadReport> {
        let _serialized = self
            .reload_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut report = ReloadReport::default();
        let mut seen: Vec<(String, Fingerprint, PathBuf)> = Vec::new();

        for entry in std::fs::read_dir(&self.dir)? {
            let entry = match entry {
                Ok(entry) => entry,
                Err(e) => {
                    report
                        .failed
                        .push(("<dir entry>".to_string(), e.to_string()));
                    continue;
                }
            };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXTENSION) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                report.failed.push((
                    path.display().to_string(),
                    "non-UTF-8 file name".to_string(),
                ));
                continue;
            };
            if !is_valid_model_name(stem) {
                report.failed.push((
                    stem.to_string(),
                    "model names may only contain [A-Za-z0-9._-]".to_string(),
                ));
                continue;
            }
            match fingerprint(&path) {
                Ok(fp) => seen.push((stem.to_string(), fp, path)),
                Err(e) => report.failed.push((stem.to_string(), e.to_string())),
            }
        }

        // Peek new/changed files without holding any lock.
        let current: BTreeMap<String, Fingerprint> = {
            let entries = self
                .entries
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            entries
                .iter()
                .map(|(name, e)| (name.clone(), e.header.fingerprint))
                .collect()
        };
        let mut fresh: Vec<Arc<ModelEntry>> = Vec::new();
        for (name, fp, path) in &seen {
            if current.get(name) == Some(fp) {
                report.unchanged.push(name.clone());
                continue;
            }
            self.header_peeks.fetch_add(1, Ordering::Relaxed);
            match SnapshotHeader::peek_file(path) {
                Ok(header) => {
                    fresh.push(Arc::new(ModelEntry {
                        header: Arc::new(ModelHeader {
                            name: name.clone(),
                            path: path.clone(),
                            fingerprint: *fp,
                            header,
                        }),
                        state: Mutex::new(LoadState::Unloaded),
                        loaded_cond: Condvar::new(),
                        last_used: AtomicU64::new(0),
                    }));
                    report.loaded.push(name.clone());
                }
                Err(e) => report.failed.push((name.clone(), e.to_string())),
            }
        }

        // Atomic swap: drop vanished entries, insert fresh ones. Entries
        // whose file failed to peek are intentionally left as-is.
        let keep: std::collections::BTreeSet<&str> = seen
            .iter()
            .map(|(name, _, _)| name.as_str())
            .chain(report.failed.iter().map(|(name, _)| name.as_str()))
            .collect();
        let mut replaced: Vec<Arc<ModelEntry>> = Vec::new();
        {
            let mut entries = self
                .entries
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let vanished: Vec<String> = entries
                .keys()
                .filter(|name| !keep.contains(name.as_str()))
                .cloned()
                .collect();
            for name in vanished {
                if let Some(old) = entries.remove(&name) {
                    replaced.push(old);
                }
                report.removed.push(name);
            }
            for entry in fresh {
                if let Some(old) = entries.insert(entry.header.name.clone(), entry) {
                    replaced.push(old);
                }
            }
        }
        // Release the budget charge of entries this reload dropped or
        // superseded while they were resident; in-flight handles still
        // keep the models themselves alive.
        for old in replaced {
            let state = old
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let LoadState::Loaded { cost, .. } = &*state {
                self.resident_bytes.fetch_sub(*cost, Ordering::Relaxed);
            }
        }
        Ok(report)
    }
}

/// Whether `name` is a servable model name (safe to embed in a request
/// path verbatim).
pub fn is_valid_model_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

fn fingerprint(path: &Path) -> std::io::Result<Fingerprint> {
    let meta = std::fs::metadata(path)?;
    let mtime = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    Ok((meta.len(), mtime))
}

/// The full checksummed decode a lazy `get` performs on first touch.
fn load_model(header: &ModelHeader) -> Result<LoadedModel, String> {
    let bytes = std::fs::read(&header.path).map_err(|e| format!("read failed: {e}"))?;
    let snapshot = SynthesisSnapshot::from_bytes(&bytes).map_err(|e| e.to_string())?;
    Ok(LoadedModel {
        name: header.name.clone(),
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_name_validation() {
        assert!(is_valid_model_name("adult-v3"));
        assert!(is_valid_model_name("m_1.2"));
        assert!(!is_valid_model_name(""));
        assert!(!is_valid_model_name("has space"));
        assert!(!is_valid_model_name("path/traversal"));
        assert!(!is_valid_model_name("q?uery"));
        assert!(!is_valid_model_name(&"x".repeat(129)));
    }

    #[test]
    fn empty_directory_is_an_empty_registry() {
        let dir = std::env::temp_dir().join(format!("p3gm_registry_empty_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let (registry, report) = Registry::open(&dir).unwrap();
        assert!(registry.is_empty());
        assert!(matches!(
            registry.get("anything"),
            Err(RegistryError::NotFound)
        ));
        assert!(registry.header("anything").is_none());
        assert_eq!(report, ReloadReport::default());
        assert_eq!(registry.stats(), RegistryStats::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let dir = std::env::temp_dir().join("p3gm_registry_does_not_exist_xyz");
        assert!(Registry::open(&dir).is_err());
    }

    #[test]
    fn corrupt_snapshot_files_are_reported_not_served() {
        let dir =
            std::env::temp_dir().join(format!("p3gm_registry_corrupt_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        std::fs::write(
            dir.join("broken.snapshot"),
            b"this is long enough to frame-check but is not a p3gm snapshot",
        )
        .unwrap();
        std::fs::write(dir.join("ignored.txt"), b"not even the extension").unwrap();
        std::fs::write(dir.join("bad name.snapshot"), b"x").unwrap();
        let (registry, report) = Registry::open(&dir).unwrap();
        assert!(registry.is_empty());
        assert_eq!(report.failed.len(), 2, "{report:?}");
        assert!(report
            .failed
            .iter()
            .any(|(name, reason)| name == "broken" && reason.contains("magic")));
        assert!(report.failed.iter().any(|(name, _)| name == "bad name"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
