//! Model registry: named snapshots loaded from a directory, swapped
//! atomically, hot-reloadable.
//!
//! A registry watches one directory of `*.snapshot` files (the buffers
//! written by `SynthesisSnapshot::to_bytes`). Each file's stem is the
//! model's name — restricted to `[A-Za-z0-9._-]` so names embed directly
//! in request paths with no escaping. Loading verifies every buffer
//! through the `p3gm-store` typed-error decoding path, so a truncated or
//! corrupt file can never become a serving model.
//!
//! Loaded models live behind `Arc` handles in an `RwLock`ed map:
//! [`Registry::get`] clones the `Arc` out under a brief read lock, so a
//! [`Registry::reload`] that swaps or drops an entry never invalidates a
//! request already executing against the old model — in-flight requests
//! finish on the snapshot they started with, and the old model is freed
//! when the last of them completes. This includes **streamed** sampling
//! responses: the chunked body generator owns its `Arc<LoadedModel>` for
//! the whole lifetime of the response, so a model swapped or removed
//! mid-stream keeps serving that stream's remaining chunks from the
//! version the request started on (its memory is reclaimed when the
//! stream ends).
//!
//! Reload is incremental: files whose `(length, mtime)` fingerprint is
//! unchanged keep their existing entry (no re-decode of multi-megabyte
//! weight buffers), new and changed files are decoded fresh, entries
//! whose file disappeared are dropped, and a file that fails to decode
//! **keeps the previous entry serving** (a half-written upload must not
//! take down a live model) while the failure is reported in the
//! [`ReloadReport`].

use p3gm_core::snapshot::SynthesisSnapshot;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// File extension a registry directory entry must carry to be considered
/// a model snapshot.
pub const SNAPSHOT_EXTENSION: &str = "snapshot";

/// One loaded, serving model.
#[derive(Debug)]
pub struct LoadedModel {
    name: String,
    snapshot: SynthesisSnapshot,
    fingerprint: Fingerprint,
}

impl LoadedModel {
    /// The model's name (the snapshot file's stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The decoded snapshot.
    pub fn snapshot(&self) -> &SynthesisSnapshot {
        &self.snapshot
    }
}

/// The change-detection fingerprint of a snapshot file: byte length and
/// modification time (nanoseconds since the epoch; 0 when the filesystem
/// does not report one).
type Fingerprint = (u64, u128);

/// What one [`Registry::reload`] (or the initial scan) did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReloadReport {
    /// Models (re)loaded from new or changed files.
    pub loaded: Vec<String>,
    /// Models whose files were unchanged (entry kept, no re-decode).
    pub unchanged: Vec<String>,
    /// Models dropped because their file disappeared.
    pub removed: Vec<String>,
    /// Files that could not be loaded, with the reason. The previous
    /// entry (if any) keeps serving.
    pub failed: Vec<(String, String)>,
}

/// A directory of named snapshots served behind atomically-swappable
/// `Arc` handles.
#[derive(Debug)]
pub struct Registry {
    dir: PathBuf,
    models: RwLock<BTreeMap<String, Arc<LoadedModel>>>,
    /// Serializes [`Registry::reload`] runs: decoding happens outside the
    /// `models` lock, so without this two concurrent reloads could
    /// interleave scan/decode/swap and re-insert a model whose file a
    /// faster reload already saw deleted.
    reload_lock: Mutex<()>,
}

impl Registry {
    /// Opens a registry over `dir` and performs the initial scan.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<(Registry, ReloadReport)> {
        let registry = Registry {
            dir: dir.into(),
            models: RwLock::new(BTreeMap::new()),
            reload_lock: Mutex::new(()),
        };
        let report = registry.reload()?;
        Ok((registry, report))
    }

    /// The directory being served.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The handle for a named model, if loaded. The returned `Arc` keeps
    /// the model alive across concurrent reloads.
    pub fn get(&self, name: &str) -> Option<Arc<LoadedModel>> {
        self.models
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Handles for every loaded model, sorted by name.
    pub fn all(&self) -> Vec<Arc<LoadedModel>> {
        self.models
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .cloned()
            .collect()
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.models
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no models are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rescans the directory and atomically applies the changes.
    ///
    /// Decoding happens **outside** the write lock: requests keep being
    /// served from the current map while new buffers validate, and the
    /// final swap is a brief lock that moves `Arc`s, not model weights.
    /// Returns what changed; `Err` only when the directory itself cannot
    /// be listed.
    pub fn reload(&self) -> std::io::Result<ReloadReport> {
        let _serialized = self
            .reload_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut report = ReloadReport::default();
        let mut seen: Vec<(String, Fingerprint, PathBuf)> = Vec::new();

        for entry in std::fs::read_dir(&self.dir)? {
            let entry = match entry {
                Ok(entry) => entry,
                Err(e) => {
                    report
                        .failed
                        .push(("<dir entry>".to_string(), e.to_string()));
                    continue;
                }
            };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXTENSION) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                report.failed.push((
                    path.display().to_string(),
                    "non-UTF-8 file name".to_string(),
                ));
                continue;
            };
            if !is_valid_model_name(stem) {
                report.failed.push((
                    stem.to_string(),
                    "model names may only contain [A-Za-z0-9._-]".to_string(),
                ));
                continue;
            }
            match fingerprint(&path) {
                Ok(fp) => seen.push((stem.to_string(), fp, path)),
                Err(e) => report.failed.push((stem.to_string(), e.to_string())),
            }
        }

        // Decode new/changed files without holding any lock.
        let current: BTreeMap<String, Fingerprint> = {
            let models = self
                .models
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            models
                .iter()
                .map(|(name, model)| (name.clone(), model.fingerprint))
                .collect()
        };
        let mut fresh: Vec<Arc<LoadedModel>> = Vec::new();
        for (name, fp, path) in &seen {
            if current.get(name) == Some(fp) {
                report.unchanged.push(name.clone());
                continue;
            }
            match load_model(name, *fp, path) {
                Ok(model) => {
                    fresh.push(Arc::new(model));
                    report.loaded.push(name.clone());
                }
                Err(reason) => report.failed.push((name.clone(), reason)),
            }
        }

        // Atomic swap: drop vanished entries, insert fresh ones. Entries
        // whose file failed to decode are intentionally left as-is.
        let keep: std::collections::BTreeSet<&str> = seen
            .iter()
            .map(|(name, _, _)| name.as_str())
            .chain(report.failed.iter().map(|(name, _)| name.as_str()))
            .collect();
        let mut models = self
            .models
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let vanished: Vec<String> = models
            .keys()
            .filter(|name| !keep.contains(name.as_str()))
            .cloned()
            .collect();
        for name in vanished {
            models.remove(&name);
            report.removed.push(name);
        }
        for model in fresh {
            models.insert(model.name.clone(), model);
        }
        Ok(report)
    }
}

/// Whether `name` is a servable model name (safe to embed in a request
/// path verbatim).
pub fn is_valid_model_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

fn fingerprint(path: &Path) -> std::io::Result<Fingerprint> {
    let meta = std::fs::metadata(path)?;
    let mtime = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    Ok((meta.len(), mtime))
}

fn load_model(name: &str, fingerprint: Fingerprint, path: &Path) -> Result<LoadedModel, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read failed: {e}"))?;
    let snapshot = SynthesisSnapshot::from_bytes(&bytes).map_err(|e| e.to_string())?;
    Ok(LoadedModel {
        name: name.to_string(),
        snapshot,
        fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_name_validation() {
        assert!(is_valid_model_name("adult-v3"));
        assert!(is_valid_model_name("m_1.2"));
        assert!(!is_valid_model_name(""));
        assert!(!is_valid_model_name("has space"));
        assert!(!is_valid_model_name("path/traversal"));
        assert!(!is_valid_model_name("q?uery"));
        assert!(!is_valid_model_name(&"x".repeat(129)));
    }

    #[test]
    fn empty_directory_is_an_empty_registry() {
        let dir = std::env::temp_dir().join(format!("p3gm_registry_empty_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let (registry, report) = Registry::open(&dir).unwrap();
        assert!(registry.is_empty());
        assert!(registry.get("anything").is_none());
        assert_eq!(report, ReloadReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let dir = std::env::temp_dir().join("p3gm_registry_does_not_exist_xyz");
        assert!(Registry::open(&dir).is_err());
    }

    #[test]
    fn corrupt_snapshot_files_are_reported_not_served() {
        let dir =
            std::env::temp_dir().join(format!("p3gm_registry_corrupt_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        std::fs::write(
            dir.join("broken.snapshot"),
            b"this is long enough to frame-check but is not a p3gm snapshot",
        )
        .unwrap();
        std::fs::write(dir.join("ignored.txt"), b"not even the extension").unwrap();
        std::fs::write(dir.join("bad name.snapshot"), b"x").unwrap();
        let (registry, report) = Registry::open(&dir).unwrap();
        assert!(registry.is_empty());
        assert_eq!(report.failed.len(), 2, "{report:?}");
        assert!(report
            .failed
            .iter()
            .any(|(name, reason)| name == "broken" && reason.contains("magic")));
        assert!(report.failed.iter().any(|(name, _)| name == "bad name"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
