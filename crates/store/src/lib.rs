//! # p3gm-store
//!
//! Versioned binary snapshot codec for the P3GM workspace.
//!
//! P3GM's whole value proposition (paper §IV) is that the expensive
//! differentially private training is paid **once** and the trained
//! generative model is then sampled from arbitrarily often as
//! post-processing, at zero additional privacy cost. That only works in
//! practice if the trained model can outlive the process that trained it:
//! this crate provides the byte format every persisted layer of the
//! workspace (`Matrix`, `Mlp`, `Conv2d`, `Gmm`, the preprocess
//! transforms, and the top-level `PhasedGenerativeModel` snapshot) encodes
//! itself with via `to_bytes` / `from_bytes` surfaces.
//!
//! The workspace builds offline with no serde, so the codec is hand-rolled
//! on `std` alone. Design goals, in order: **never panic on untrusted
//! bytes** (every failure is a typed [`StoreError`]), **detect corruption**
//! (a CRC-32 over the entire buffer), **stay versioned** (a format version
//! and a per-type tag in every buffer), and **round-trip bit-exactly**
//! (`f64` values travel as their IEEE-754 bit patterns).
//!
//! ## Buffer layout
//!
//! Every `to_bytes` buffer is self-contained and framed identically:
//!
//! | Offset          | Size | Field                                         |
//! |-----------------|------|-----------------------------------------------|
//! | 0               | 4    | Magic `b"P3GM"`                               |
//! | 4               | 4    | Format version (`u32` LE, [`FORMAT_VERSION`]) |
//! | 8               | 4    | Type tag (`u32` LE, see [`tags`])             |
//! | 12              | 8    | Payload length `L` (`u64` LE)                 |
//! | 20              | `L`  | Payload (length-prefixed fields, see below)   |
//! | 20 + `L`        | 4    | CRC-32 (IEEE) of bytes `0 .. 20 + L` (LE)     |
//!
//! Payload fields are written in a fixed per-type order using the
//! primitives of [`Encoder`]: integers and `f64` bit patterns as
//! little-endian fixed-width values, booleans as one byte, and every
//! variable-length field (`f64` slices, nested buffers) prefixed with its
//! `u64` length. Nested types (e.g. the `Matrix` inside a `Gmm`) are
//! embedded as their own complete framed buffer via [`Encoder::nested`],
//! so each layer validates independently. This layering is a deliberate
//! trade-off: the bulk `f64` data is copied and CRC'd once per nesting
//! level (3–4 passes for a full model snapshot), bounded by the table-
//! driven [`crc32`], in exchange for every layer's buffer being usable,
//! versioned and checkable on its own.
//!
//! ## Decoding discipline
//!
//! [`Decoder::new`] validates the frame before any field is read: length,
//! magic, version, tag, payload length, then checksum. Field reads are
//! bounds-checked and a type's `from_bytes` finishes with
//! [`Decoder::finish`], which rejects trailing payload bytes. Truncated,
//! bit-flipped, wrong-tag and future-version buffers therefore all fail
//! with a typed error — never a panic and never a silently wrong value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Magic bytes opening every snapshot buffer.
pub const MAGIC: [u8; 4] = *b"P3GM";

/// Current snapshot format version. Bump on any layout change; readers
/// reject buffers with a different version.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed frame header (magic + version + tag +
/// payload length).
pub const HEADER_LEN: usize = 20;

/// Byte length of the trailing CRC-32 field.
pub const CHECKSUM_LEN: usize = 4;

/// Type tags identifying what a buffer encodes.
///
/// Tags are part of the wire format: never reuse or renumber an existing
/// tag; append new ones.
pub mod tags {
    /// `p3gm_linalg::Matrix`.
    pub const MATRIX: u32 = 1;
    /// `p3gm_nn::mlp::Mlp`.
    pub const MLP: u32 = 2;
    /// `p3gm_nn::conv::Conv2d`.
    pub const CONV2D: u32 = 3;
    /// `p3gm_mixture::Gmm`.
    pub const GMM: u32 = 4;
    /// `p3gm_preprocess::pca::Pca`.
    pub const PCA: u32 = 5;
    /// `p3gm_preprocess::pca::DpPca`.
    pub const DP_PCA: u32 = 6;
    /// `p3gm_preprocess::scaler::MinMaxScaler`.
    pub const MIN_MAX_SCALER: u32 = 7;
    /// `p3gm_preprocess::scaler::StandardScaler`.
    pub const STANDARD_SCALER: u32 = 8;
    /// `p3gm_preprocess::encoding::OneHotEncoder`.
    pub const ONE_HOT_ENCODER: u32 = 9;
    /// `p3gm_privacy::rdp::PrivacySpec`.
    pub const PRIVACY_SPEC: u32 = 10;
    /// `p3gm_core::pgm::PhasedGenerativeModel`.
    pub const PGM_MODEL: u32 = 11;
    /// `p3gm_core::synthesis::LabelledSynthesizer`.
    pub const LABELLED_SYNTHESIZER: u32 = 12;
    /// `p3gm_core::snapshot::SynthesisSnapshot`.
    pub const SYNTHESIS_SNAPSHOT: u32 = 13;
    /// `p3gm_server::ledger::BudgetLedger`.
    pub const BUDGET_LEDGER: u32 = 14;
}

/// Errors produced while decoding a snapshot buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The buffer ended before a read could complete.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The buffer does not start with the `P3GM` magic.
    BadMagic,
    /// The buffer was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the buffer.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The buffer encodes a different type than the caller expected.
    WrongTag {
        /// Tag the caller expected.
        expected: u32,
        /// Tag found in the buffer.
        found: u32,
    },
    /// The trailing CRC-32 does not match the buffer contents.
    ChecksumMismatch {
        /// Checksum recomputed from the buffer contents.
        computed: u32,
        /// Checksum stored in the buffer.
        stored: u32,
    },
    /// The payload decoded cleanly but left unread bytes behind.
    TrailingBytes {
        /// Number of unread payload bytes.
        count: usize,
    },
    /// The payload violates a semantic invariant of the encoded type.
    Invalid {
        /// Description of the violated invariant.
        msg: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated buffer: needed {needed} bytes, had {available}"
                )
            }
            StoreError::BadMagic => write!(f, "not a P3GM snapshot (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (supported: {supported})"
                )
            }
            StoreError::WrongTag { expected, found } => {
                write!(f, "wrong type tag: expected {expected}, found {found}")
            }
            StoreError::ChecksumMismatch { computed, stored } => write!(
                f,
                "checksum mismatch: computed {computed:#010x}, stored {stored:#010x}"
            ),
            StoreError::TrailingBytes { count } => {
                write!(f, "{count} trailing payload bytes after decoding")
            }
            StoreError::Invalid { msg } => write!(f, "invalid payload: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Byte-indexed lookup table for the reflected CRC-32 polynomial,
/// computed at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`,
/// table-driven (one lookup per byte — snapshots carry bulk `f64` weight
/// data, so the checksum pass is on the save/load hot path).
///
/// Exposed so tests and tools can re-frame buffers (e.g. to craft a
/// version-mismatch fixture with a valid checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// The frame header of a snapshot buffer, decoded without touching the
/// payload: what type the buffer claims to hold and how long it claims
/// to be.
///
/// This is the cheap half of the codec: [`peek_frame`] needs only the
/// first [`HEADER_LEN`] bytes of a buffer (or file), so a caller can
/// learn a snapshot's tag and total framed length — and decide whether
/// to pay for the full, checksummed decode — from a bounded read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Format version stored in the frame (always [`FORMAT_VERSION`] —
    /// other versions are rejected by [`peek_frame`] itself).
    pub version: u32,
    /// Type tag (see [`tags`]).
    pub tag: u32,
    /// Payload length `L` the frame claims.
    pub payload_len: u64,
}

impl FrameInfo {
    /// Total byte length of the framed buffer this header describes
    /// (header + payload + checksum), or `None` if it overflows `usize`.
    pub fn framed_len(&self) -> Option<usize> {
        usize::try_from(self.payload_len)
            .ok()
            .and_then(|p| p.checked_add(HEADER_LEN + CHECKSUM_LEN))
    }
}

/// Little-endian `u32` from the first four bytes of `bytes`. Slice
/// patterns make this total: short input is a typed [`StoreError`],
/// never a panic — the decode paths run on untrusted bytes.
fn le_u32(bytes: &[u8]) -> Result<u32> {
    match bytes {
        [a, b, c, d, ..] => Ok(u32::from_le_bytes([*a, *b, *c, *d])),
        _ => Err(StoreError::Truncated {
            needed: 4,
            available: bytes.len(),
        }),
    }
}

/// Little-endian `u64` from the first eight bytes of `bytes`; total for
/// the same reason as [`le_u32`].
fn le_u64(bytes: &[u8]) -> Result<u64> {
    match bytes {
        [a, b, c, d, e, f, g, h, ..] => Ok(u64::from_le_bytes([*a, *b, *c, *d, *e, *f, *g, *h])),
        _ => Err(StoreError::Truncated {
            needed: 8,
            available: bytes.len(),
        }),
    }
}

/// Decodes the frame header from the leading bytes of a buffer: magic,
/// version, tag, payload length. `bytes` may be any prefix of the full
/// buffer as long as it covers the [`HEADER_LEN`]-byte header.
///
/// No checksum is verified — the CRC lives at the *end* of the buffer,
/// which a header peek deliberately never reads. Corruption in the
/// peeked region is caught only by the magic/version checks and by the
/// semantic validation of whatever fields the caller goes on to read;
/// the full-decode path ([`Decoder::new`]) remains the integrity
/// authority.
pub fn peek_frame(bytes: &[u8]) -> Result<FrameInfo> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = le_u32(&bytes[4..])?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let tag = le_u32(&bytes[8..])?;
    let payload_len = le_u64(&bytes[12..])?;
    Ok(FrameInfo {
        version,
        tag,
        payload_len,
    })
}

/// Builds one framed snapshot buffer (see the crate docs for the layout).
///
/// Create with the type's tag, write the payload fields in their fixed
/// order, and call [`Encoder::finish`] to patch the payload length and
/// append the checksum.
#[derive(Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Starts a buffer for the given type tag.
    pub fn new(tag: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&tag.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // payload length, patched in finish()
        Encoder { buf }
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Writes a boolean as one byte (`0` / `1`).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trip,
    /// NaN payloads and signed zeros included).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Writes a length-prefixed slice of `f64` bit patterns.
    pub fn f64_slice(&mut self, values: &[f64]) -> &mut Self {
        self.usize(values.len());
        for &v in values {
            self.f64(v);
        }
        self
    }

    /// Writes a length-prefixed nested buffer (a complete framed buffer
    /// produced by another type's `to_bytes`).
    pub fn nested(&mut self, bytes: &[u8]) -> &mut Self {
        self.usize(bytes.len());
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Writes a length-prefixed UTF-8 string (byte length, then the bytes).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Patches the payload length and appends the CRC-32, returning the
    /// finished buffer.
    pub fn finish(mut self) -> Vec<u8> {
        let payload_len = (self.buf.len() - HEADER_LEN) as u64;
        self.buf[12..20].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// Reads one framed snapshot buffer, validating the frame up front and
/// bounds-checking every field read.
#[derive(Debug)]
pub struct Decoder<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Validates the frame (magic, version, tag, payload length, checksum)
    /// and positions the decoder at the start of the payload.
    pub fn new(bytes: &'a [u8], expected_tag: u32) -> Result<Self> {
        if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN + CHECKSUM_LEN,
                available: bytes.len(),
            });
        }
        if bytes[..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = le_u32(&bytes[4..])?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let tag = le_u32(&bytes[8..])?;
        if tag != expected_tag {
            return Err(StoreError::WrongTag {
                expected: expected_tag,
                found: tag,
            });
        }
        let payload_len = le_u64(&bytes[12..])?;
        let payload_len: usize = payload_len.try_into().map_err(|_| StoreError::Truncated {
            needed: usize::MAX,
            available: bytes.len(),
        })?;
        let framed_len = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(CHECKSUM_LEN))
            .ok_or(StoreError::Truncated {
                needed: usize::MAX,
                available: bytes.len(),
            })?;
        if bytes.len() < framed_len {
            return Err(StoreError::Truncated {
                needed: framed_len,
                available: bytes.len(),
            });
        }
        if bytes.len() > framed_len {
            return Err(StoreError::TrailingBytes {
                count: bytes.len() - framed_len,
            });
        }
        let body = &bytes[..HEADER_LEN + payload_len];
        let stored = le_u32(&bytes[HEADER_LEN + payload_len..])?;
        let computed = crc32(body);
        if computed != stored {
            return Err(StoreError::ChecksumMismatch { computed, stored });
        }
        Ok(Decoder {
            payload: &bytes[HEADER_LEN..HEADER_LEN + payload_len],
            pos: 0,
        })
    }

    /// Positions a decoder over the **prefix** of a framed buffer for
    /// header peeking: validates magic, version and tag (via
    /// [`peek_frame`]) and exposes however much of the payload `bytes`
    /// actually carries, capped at the frame's declared payload length.
    ///
    /// Unlike [`Decoder::new`], this neither requires the complete
    /// buffer nor verifies the checksum — it is the read path for
    /// *metadata peeks* (leading geometry/config fields) where decoding
    /// the multi-megabyte weight payload just to list a model would
    /// defeat the point. Every field read remains bounds-checked
    /// against the available prefix (a read past it is a typed
    /// [`StoreError::Truncated`]), and [`Decoder::finish`] must **not**
    /// be called on a prefix decoder (the unread weight payload is the
    /// whole point). Integrity-critical decodes must keep using
    /// [`Decoder::new`].
    pub fn over_prefix(bytes: &'a [u8], expected_tag: u32) -> Result<Self> {
        let info = peek_frame(bytes)?;
        if info.tag != expected_tag {
            return Err(StoreError::WrongTag {
                expected: expected_tag,
                found: info.tag,
            });
        }
        let available = bytes.len() - HEADER_LEN;
        let payload_len = usize::try_from(info.payload_len)
            .unwrap_or(usize::MAX)
            .min(available);
        Ok(Decoder {
            payload: &bytes[HEADER_LEN..HEADER_LEN + payload_len],
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let available = self.payload.len() - self.pos;
        if available < n {
            return Err(StoreError::Truncated {
                needed: n,
                available,
            });
        }
        let slice = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (little-endian).
    pub fn u32(&mut self) -> Result<u32> {
        le_u32(self.take(4)?)
    }

    /// Reads a `u64` (little-endian).
    pub fn u64(&mut self) -> Result<u64> {
        le_u64(self.take(8)?)
    }

    /// Reads a `u64` and converts it to `usize`.
    pub fn usize(&mut self) -> Result<usize> {
        self.u64()?.try_into().map_err(|_| StoreError::Invalid {
            msg: "length does not fit in usize".to_string(),
        })
    }

    /// Reads a boolean, rejecting any byte other than `0` / `1`.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Invalid {
                msg: format!("invalid boolean byte {other}"),
            }),
        }
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>> {
        let len = self.usize()?;
        let available = self.payload.len() - self.pos;
        // Bound the allocation by the bytes actually present so a crafted
        // length cannot trigger an out-of-memory allocation.
        if len > available / 8 {
            return Err(StoreError::Truncated {
                needed: len.saturating_mul(8),
                available,
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed nested buffer.
    pub fn nested(&mut self) -> Result<&'a [u8]> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string written by [`Encoder::str`].
    /// Invalid UTF-8 is a typed [`StoreError::Invalid`]; the length is
    /// bounds-checked against the remaining payload before any allocation.
    pub fn string(&mut self) -> Result<String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|e| StoreError::Invalid {
                msg: format!("invalid UTF-8 in string field: {e}"),
            })
    }

    /// Number of unread payload bytes.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Finishes decoding, rejecting unread payload bytes.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.payload.len() {
            return Err(StoreError::TrailingBytes {
                count: self.payload.len() - self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_buffer() -> Vec<u8> {
        let mut enc = Encoder::new(tags::MATRIX);
        enc.u64(3).bool(true).f64(1.5).f64_slice(&[0.25, -0.5]);
        enc.finish()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32 (IEEE).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_primitives() {
        let bytes = sample_buffer();
        let mut dec = Decoder::new(&bytes, tags::MATRIX).unwrap();
        assert_eq!(dec.u64().unwrap(), 3);
        assert!(dec.bool().unwrap());
        assert_eq!(dec.f64().unwrap(), 1.5);
        assert_eq!(dec.f64_vec().unwrap(), vec![0.25, -0.5]);
        dec.finish().unwrap();
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            1e-300,
        ] {
            let mut enc = Encoder::new(7);
            enc.f64(v);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes, 7).unwrap();
            assert_eq!(dec.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn nested_buffers_embed_and_extract() {
        let inner = sample_buffer();
        let mut enc = Encoder::new(tags::GMM);
        enc.nested(&inner).u8(9);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, tags::GMM).unwrap();
        assert_eq!(dec.nested().unwrap(), inner.as_slice());
        assert_eq!(dec.u8().unwrap(), 9);
        dec.finish().unwrap();
    }

    #[test]
    fn peek_frame_reads_the_header_from_a_bounded_prefix() {
        let bytes = sample_buffer();
        let info = peek_frame(&bytes[..HEADER_LEN]).unwrap();
        assert_eq!(info.tag, tags::MATRIX);
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.framed_len(), Some(bytes.len()));
        // The full buffer peeks identically.
        assert_eq!(peek_frame(&bytes).unwrap(), info);
        // Too short a prefix is a typed truncation, never a panic.
        for cut in 0..HEADER_LEN {
            assert!(matches!(
                peek_frame(&bytes[..cut]),
                Err(StoreError::Truncated { .. })
            ));
        }
        // Magic and version are still enforced on the peek path.
        let mut bad = bytes.clone();
        bad[1] = b'!';
        assert_eq!(peek_frame(&bad), Err(StoreError::BadMagic));
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
        assert!(matches!(
            peek_frame(&bad),
            Err(StoreError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 7
        ));
    }

    #[test]
    fn prefix_decoder_reads_leading_fields_without_the_tail() {
        let bytes = sample_buffer();
        // Drop the checksum and most of the payload: the leading u64 and
        // bool are still readable, exactly as a full decode would see them.
        let mut dec = Decoder::over_prefix(&bytes[..HEADER_LEN + 9], tags::MATRIX).unwrap();
        assert_eq!(dec.u64().unwrap(), 3);
        assert!(dec.bool().unwrap());
        // Reading past the available prefix is a typed truncation.
        assert!(matches!(dec.f64(), Err(StoreError::Truncated { .. })));
        // The tag is enforced.
        assert!(matches!(
            Decoder::over_prefix(&bytes, tags::GMM),
            Err(StoreError::WrongTag { .. })
        ));
        // A prefix longer than the declared payload is capped at the
        // frame's own length: trailing junk past the checksum is ignored.
        let mut extended = bytes.clone();
        extended.extend_from_slice(b"junk");
        let mut dec = Decoder::over_prefix(&extended, tags::MATRIX).unwrap();
        assert_eq!(dec.u64().unwrap(), 3);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_buffer();
        bytes[0] = b'X';
        assert_eq!(
            Decoder::new(&bytes, tags::MATRIX).unwrap_err(),
            StoreError::BadMagic
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample_buffer();
        // Patch the version and re-frame with a valid checksum so the error
        // is specifically the version, not the checksum.
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let body_len = bytes.len() - CHECKSUM_LEN;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Decoder::new(&bytes, tags::MATRIX).unwrap_err(),
            StoreError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let bytes = sample_buffer();
        assert_eq!(
            Decoder::new(&bytes, tags::GMM).unwrap_err(),
            StoreError::WrongTag {
                expected: tags::GMM,
                found: tags::MATRIX
            }
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample_buffer();
        for cut in 0..bytes.len() {
            assert!(
                Decoder::new(&bytes[..cut], tags::MATRIX).is_err(),
                "prefix of length {cut} accepted"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample_buffer();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            assert!(
                Decoder::new(&corrupted, tags::MATRIX).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_buffer();
        bytes.push(0);
        assert_eq!(
            Decoder::new(&bytes, tags::MATRIX).unwrap_err(),
            StoreError::TrailingBytes { count: 1 }
        );
    }

    #[test]
    fn unread_payload_is_rejected_by_finish() {
        let bytes = sample_buffer();
        let mut dec = Decoder::new(&bytes, tags::MATRIX).unwrap();
        let _ = dec.u64().unwrap();
        assert!(matches!(
            dec.finish().unwrap_err(),
            StoreError::TrailingBytes { .. }
        ));
    }

    #[test]
    fn oversized_vec_length_is_rejected_without_allocating() {
        let mut enc = Encoder::new(1);
        enc.u64(u64::MAX); // claims a vec of u64::MAX f64s
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, 1).unwrap();
        assert!(dec.f64_vec().is_err());
    }

    #[test]
    fn string_round_trip_and_invalid_utf8() {
        let mut enc = Encoder::new(tags::BUDGET_LEDGER);
        enc.str("adult-v3").str("").str("ε δ 日本語");
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, tags::BUDGET_LEDGER).unwrap();
        assert_eq!(dec.string().unwrap(), "adult-v3");
        assert_eq!(dec.string().unwrap(), "");
        assert_eq!(dec.string().unwrap(), "ε δ 日本語");
        dec.finish().unwrap();

        // A length-prefixed byte run that is not UTF-8 is a typed error.
        let mut enc = Encoder::new(tags::BUDGET_LEDGER);
        enc.usize(2).u8(0xFF).u8(0xFE);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, tags::BUDGET_LEDGER).unwrap();
        assert!(matches!(
            dec.string().unwrap_err(),
            StoreError::Invalid { .. }
        ));

        // A crafted length larger than the payload is Truncated, checked
        // before any allocation.
        let mut enc = Encoder::new(tags::BUDGET_LEDGER);
        enc.u64(u64::MAX);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, tags::BUDGET_LEDGER).unwrap();
        assert!(matches!(
            dec.string().unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut enc = Encoder::new(1);
        enc.u8(2);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, 1).unwrap();
        assert!(matches!(
            dec.bool().unwrap_err(),
            StoreError::Invalid { .. }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::Truncated {
            needed: 8,
            available: 3
        }
        .to_string()
        .contains("truncated"));
        assert!(StoreError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(StoreError::ChecksumMismatch {
            computed: 1,
            stored: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(StoreError::WrongTag {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("tag"));
        assert!(StoreError::TrailingBytes { count: 3 }
            .to_string()
            .contains("3"));
        assert!(StoreError::Invalid { msg: "neg".into() }
            .to_string()
            .contains("neg"));
    }
}
