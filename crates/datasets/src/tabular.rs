//! Synthetic tabular datasets mirroring the structure of the paper's four
//! binary-classification datasets (Table III).
//!
//! Each generator produces class-conditional data with
//!
//! * the same dimensionality regime as the original (ISOLET and ESR are
//!   generated at a configurable, reduced width for single-core runtimes —
//!   the defaults keep the "many more features than the others" property),
//! * the same class imbalance (0.2% positives for Credit, 24.1% for Adult,
//!   19.2% for ISOLET, 20% for ESR),
//! * a low-dimensional latent structure (a handful of latent factors mixed
//!   into all observed features) so that PCA captures most of the variance,
//!   exactly the property P3GM's Encoding Phase relies on,
//! * class-dependent shifts in a subset of features so the classification
//!   task is learnable but not trivial.

use crate::dataset::Dataset;
use p3gm_linalg::Matrix;
use p3gm_privacy::sampling;
use rand::Rng;

/// Parameters shared by the tabular generators.
#[derive(Debug, Clone, Copy)]
struct LatentFactorSpec {
    n_features: usize,
    n_latent: usize,
    /// Observation noise added on top of the latent mixture.
    noise: f64,
    /// Magnitude of the class-1 mean shift applied to the first
    /// `n_features / 3` features (in latent space it is a shift of the
    /// factors themselves, preserving the low-rank structure).
    class_shift: f64,
    positive_fraction: f64,
}

/// Draws one sample from the latent-factor model: `x = A f + shift(y) + ε`.
fn latent_factor_row<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &LatentFactorSpec,
    mixing: &Matrix,
    label: usize,
) -> Vec<f64> {
    // Latent factors: class shifts the first factor(s).
    let mut factors = sampling::normal_vec(rng, spec.n_latent, 1.0);
    if label == 1 {
        for f in factors.iter_mut().take((spec.n_latent / 2).max(1)) {
            *f += spec.class_shift;
        }
    }
    let mut x = mixing.matvec(&factors).expect("shapes fixed at generation");
    for v in x.iter_mut() {
        *v += sampling::normal(rng, 0.0, spec.noise);
    }
    // A few directly class-informative coordinates (beyond the latent shift)
    // keep the task learnable even after aggressive dimensionality reduction.
    let informative = (spec.n_features / 10).clamp(1, 8);
    for v in x.iter_mut().take(informative) {
        if label == 1 {
            *v += spec.class_shift;
        }
    }
    x
}

fn generate_latent_factor<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &LatentFactorSpec,
    n: usize,
    name: &str,
) -> Dataset {
    assert!(n >= 4, "need at least 4 samples");
    // Fixed random mixing matrix (d x k).
    let mixing = Matrix::from_fn(spec.n_features, spec.n_latent, |_, _| {
        sampling::normal(rng, 0.0, 1.0 / (spec.n_latent as f64).sqrt())
    });
    let n_positive = ((n as f64 * spec.positive_fraction).round() as usize).clamp(1, n - 1);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = usize::from(i < n_positive);
        rows.push(latent_factor_row(rng, spec, &mixing, label));
        labels.push(label);
    }
    // Shuffle so positives are not all at the front.
    let mut order: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    order.shuffle(rng);
    let features = Matrix::from_rows(&rows)
        .expect("rows have equal width")
        .select_rows(&order)
        .expect("shuffle order is a permutation");
    let labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();
    Dataset::new(features, labels, 2, name)
}

/// Kaggle-Credit-like dataset: 29 features, extremely unbalanced
/// (0.2% positives). The original features are PCA components of card
/// transactions, i.e. nearly uncorrelated continuous values with a shifted
/// minority class — which is exactly what the latent-factor model produces.
pub fn kaggle_credit_like<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Dataset {
    generate_latent_factor(
        rng,
        &LatentFactorSpec {
            n_features: 29,
            n_latent: 8,
            noise: 0.4,
            class_shift: 2.0,
            positive_fraction: 0.002,
        },
        n,
        "Kaggle Credit",
    )
}

/// Adult-like dataset: 15 features, 24.1% positives, a mix of few latent
/// factors and direct class signal (the original is low-dimensional with
/// fairly simple attribute dependencies — the regime where PrivBayes does
/// well, per the paper's discussion).
pub fn adult_like<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Dataset {
    generate_latent_factor(
        rng,
        &LatentFactorSpec {
            n_features: 15,
            n_latent: 4,
            noise: 0.5,
            class_shift: 1.2,
            positive_fraction: 0.241,
        },
        n,
        "Adult",
    )
}

/// ISOLET-like dataset: high-dimensional (default 617, configurable via
/// [`isolet_like_with_dims`]), 19.2% positives, small sample size relative
/// to the dimensionality.
pub fn isolet_like<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Dataset {
    isolet_like_with_dims(rng, n, 617)
}

/// ISOLET-like dataset with an explicit feature count (the evaluation
/// harness uses a reduced width to keep single-core runtimes short while
/// preserving the "d comparable to N" property).
pub fn isolet_like_with_dims<R: Rng + ?Sized>(rng: &mut R, n: usize, n_features: usize) -> Dataset {
    generate_latent_factor(
        rng,
        &LatentFactorSpec {
            n_features,
            n_latent: 12,
            noise: 0.5,
            class_shift: 1.0,
            positive_fraction: 0.192,
        },
        n,
        "UCI ISOLET",
    )
}

/// ESR-like dataset: EEG-style time series of `n_features` samples
/// (default 179), 20% positives. Positive-class rows ("seizure") have much
/// larger amplitude and a different dominant frequency, mirroring the real
/// Epileptic Seizure Recognition data.
pub fn esr_like<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Dataset {
    esr_like_with_dims(rng, n, 179)
}

/// ESR-like dataset with an explicit series length.
pub fn esr_like_with_dims<R: Rng + ?Sized>(rng: &mut R, n: usize, n_features: usize) -> Dataset {
    assert!(n >= 4, "need at least 4 samples");
    let n_positive = ((n as f64 * 0.20).round() as usize).clamp(1, n - 1);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = usize::from(i < n_positive);
        let (amplitude, freq) = if label == 1 {
            (4.0 + rng.gen_range(0.0..2.0), 0.6 + rng.gen_range(0.0..0.3))
        } else {
            (1.0 + rng.gen_range(0.0..0.5), 0.2 + rng.gen_range(0.0..0.1))
        };
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let row: Vec<f64> = (0..n_features)
            .map(|t| amplitude * (freq * t as f64 + phase).sin() + sampling::normal(rng, 0.0, 0.5))
            .collect();
        rows.push(row);
        labels.push(label);
    }
    use rand::seq::SliceRandom;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let features = Matrix::from_rows(&rows)
        .expect("rows have equal width")
        .select_rows(&order)
        .expect("shuffle order is a permutation");
    let labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();
    Dataset::new(features, labels, 2, "UCI ESR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3gm_linalg::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(41)
    }

    #[test]
    fn credit_shape_and_imbalance() {
        let mut r = rng();
        let d = kaggle_credit_like(&mut r, 5000);
        assert_eq!(d.n_features(), 29);
        assert_eq!(d.n_samples(), 5000);
        assert_eq!(d.n_classes, 2);
        let frac = d.positive_fraction();
        assert!(frac > 0.0005 && frac < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn adult_shape_and_imbalance() {
        let mut r = rng();
        let d = adult_like(&mut r, 2000);
        assert_eq!(d.n_features(), 15);
        let frac = d.positive_fraction();
        assert!((frac - 0.241).abs() < 0.03, "positive fraction {frac}");
    }

    #[test]
    fn isolet_shape_and_configurable_width() {
        let mut r = rng();
        let d = isolet_like_with_dims(&mut r, 300, 120);
        assert_eq!(d.n_features(), 120);
        let frac = d.positive_fraction();
        assert!((frac - 0.192).abs() < 0.05, "positive fraction {frac}");
        let full = isolet_like(&mut r, 50);
        assert_eq!(full.n_features(), 617);
    }

    #[test]
    fn esr_shape_and_class_amplitude() {
        let mut r = rng();
        let d = esr_like_with_dims(&mut r, 400, 64);
        assert_eq!(d.n_features(), 64);
        let frac = d.positive_fraction();
        assert!((frac - 0.2).abs() < 0.03, "positive fraction {frac}");
        // Positive rows have larger energy.
        let pos = d.filter_by_label(1);
        let neg = d.filter_by_label(0);
        let energy = |ds: &Dataset| -> f64 {
            ds.features
                .row_iter()
                .map(p3gm_linalg::vector::norm2_squared)
                .sum::<f64>()
                / ds.n_samples() as f64
        };
        assert!(energy(&pos) > 2.0 * energy(&neg));
    }

    #[test]
    fn latent_structure_gives_low_rank_covariance() {
        // The first few principal components should explain most variance.
        let mut r = rng();
        let d = kaggle_credit_like(&mut r, 1500);
        let cov = stats::covariance_matrix(&d.features, None).unwrap();
        let eig = p3gm_linalg::SymmetricEigen::new(&cov).unwrap();
        let ratio = eig.explained_variance_ratio(10);
        assert!(ratio > 0.6, "top-10 explained variance {ratio}");
    }

    #[test]
    fn classes_are_separated_in_feature_space() {
        let mut r = rng();
        let d = adult_like(&mut r, 3000);
        let pos = d.filter_by_label(1);
        let neg = d.filter_by_label(0);
        let mean_pos = stats::column_means(&pos.features).unwrap();
        let mean_neg = stats::column_means(&neg.features).unwrap();
        let dist = p3gm_linalg::vector::distance(&mean_pos, &mean_neg);
        assert!(dist > 0.5, "class means too close: {dist}");
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = adult_like(&mut r1, 100);
        let b = adult_like(&mut r2, 100);
        assert!(a.features.approx_eq(&b.features, 0.0));
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn at_least_one_sample_per_class_even_when_tiny() {
        let mut r = rng();
        let d = kaggle_credit_like(&mut r, 50);
        let counts = d.class_counts();
        assert!(counts[0] >= 1 && counts[1] >= 1, "{counts:?}");
    }
}
