//! The labelled-dataset container used throughout the evaluation harness.

use p3gm_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset: a feature matrix (rows are samples) plus integer
/// class labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, one row per sample.
    pub features: Matrix,
    /// Class label of every row (`0..n_classes`).
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub n_classes: usize,
    /// Human-readable name (e.g. "Kaggle Credit").
    pub name: String,
}

/// A train/test partition of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

impl Dataset {
    /// Creates a dataset, checking that labels are consistent with the
    /// feature matrix and the class count.
    ///
    /// # Panics
    /// Panics if the number of labels differs from the number of rows or a
    /// label is out of range — these are programming errors in the
    /// generators, not runtime conditions.
    pub fn new(features: Matrix, labels: Vec<usize>, n_classes: usize, name: &str) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature rows and label count must match"
        );
        assert!(n_classes >= 1, "need at least one class");
        assert!(
            labels.iter().all(|&l| l < n_classes),
            "label out of range for {n_classes} classes"
        );
        Dataset {
            features,
            labels,
            n_classes,
            name: name.to_string(),
        }
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.features.rows()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of samples in each class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Fraction of samples in each class.
    pub fn class_fractions(&self) -> Vec<f64> {
        let n = self.n_samples().max(1) as f64;
        self.class_counts().iter().map(|&c| c as f64 / n).collect()
    }

    /// Fraction of positive (label 1) samples — the imbalance statistic the
    /// paper reports for its binary datasets.
    pub fn positive_fraction(&self) -> f64 {
        if self.n_classes < 2 {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l == 1).count() as f64 / self.n_samples().max(1) as f64
    }

    /// Returns the subset of rows with the given label.
    pub fn filter_by_label(&self, label: usize) -> Dataset {
        let indices: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == label)
            .map(|(i, _)| i)
            .collect();
        self.select(&indices)
    }

    /// Returns the dataset restricted to the given row indices (in order).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let features = self
            .features
            .select_rows(indices)
            .expect("indices validated by caller");
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            features,
            labels,
            n_classes: self.n_classes,
            name: self.name.clone(),
        }
    }

    /// Random train/test split; `test_fraction` of the rows (rounded down,
    /// at least 1 if possible) go to the test set. The paper uses 90%/10%.
    pub fn train_test_split<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        test_fraction: f64,
    ) -> TrainTestSplit {
        let n = self.n_samples();
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        let n_test = ((n as f64 * test_fraction).round() as usize).clamp(1, n.saturating_sub(1));
        let (test_idx, train_idx) = indices.split_at(n_test);
        TrainTestSplit {
            train: self.select(train_idx),
            test: self.select(test_idx),
        }
    }

    /// Stratified subsample of at most `max_per_class` rows per class —
    /// used to scale experiments down while preserving the class balance.
    pub fn stratified_subsample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_per_class: usize,
    ) -> Dataset {
        let mut keep = Vec::new();
        for class in 0..self.n_classes {
            let mut idx: Vec<usize> = self
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == class)
                .map(|(i, _)| i)
                .collect();
            idx.shuffle(rng);
            idx.truncate(max_per_class);
            keep.extend(idx);
        }
        keep.sort_unstable();
        self.select(&keep)
    }

    /// The per-class sample counts needed to mirror this dataset's label
    /// ratio in a synthetic dataset of `total` rows (paper §VI: "generate a
    /// dataset so that the label ratio is the same as the real training
    /// dataset"). Every class with at least one real sample gets at least
    /// one synthetic row.
    pub fn matched_label_counts(&self, total: usize) -> Vec<usize> {
        let fractions = self.class_fractions();
        let mut counts: Vec<usize> = fractions
            .iter()
            .map(|&f| ((f * total as f64).round() as usize).max(usize::from(f > 0.0)))
            .collect();
        // Adjust the largest class so the total matches exactly.
        let sum: usize = counts.iter().sum();
        if sum != total && !counts.is_empty() {
            let largest = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0);
            if sum > total {
                counts[largest] = counts[largest].saturating_sub(sum - total);
            } else {
                counts[largest] += total - sum;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![4.0, 1.0],
            vec![5.0, 1.0],
        ])
        .unwrap();
        Dataset::new(features, vec![0, 0, 0, 0, 1, 1], 2, "toy")
    }

    #[test]
    fn basic_statistics() {
        let d = toy();
        assert_eq!(d.n_samples(), 6);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.class_counts(), vec![4, 2]);
        assert!((d.positive_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert!((d.class_fractions()[0] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label count must match")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new(Matrix::zeros(3, 2), vec![0, 1], 2, "bad");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = Dataset::new(Matrix::zeros(2, 2), vec![0, 5], 2, "bad");
    }

    #[test]
    fn filter_and_select() {
        let d = toy();
        let pos = d.filter_by_label(1);
        assert_eq!(pos.n_samples(), 2);
        assert!(pos.labels.iter().all(|&l| l == 1));
        let sel = d.select(&[0, 5]);
        assert_eq!(sel.n_samples(), 2);
        assert_eq!(sel.labels, vec![0, 1]);
        assert_eq!(sel.features.row(1), &[5.0, 1.0]);
    }

    #[test]
    fn split_preserves_all_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = toy();
        let split = d.train_test_split(&mut rng, 0.34);
        assert_eq!(split.train.n_samples() + split.test.n_samples(), 6);
        assert_eq!(split.test.n_samples(), 2);
        assert_eq!(split.train.n_classes, 2);
    }

    #[test]
    fn split_always_keeps_both_sides_nonempty() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = toy();
        let tiny = d.train_test_split(&mut rng, 0.0);
        assert!(tiny.test.n_samples() >= 1);
        assert!(tiny.train.n_samples() >= 1);
        let huge = d.train_test_split(&mut rng, 1.0);
        assert!(huge.train.n_samples() >= 1);
    }

    #[test]
    fn stratified_subsample_caps_each_class() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = toy();
        let sub = d.stratified_subsample(&mut rng, 2);
        assert_eq!(sub.n_samples(), 4);
        assert_eq!(sub.class_counts(), vec![2, 2]);
        // Larger cap keeps everything.
        let all = d.stratified_subsample(&mut rng, 100);
        assert_eq!(all.n_samples(), 6);
    }

    #[test]
    fn matched_label_counts_sum_and_ratio() {
        let d = toy();
        let counts = d.matched_label_counts(300);
        assert_eq!(counts.iter().sum::<usize>(), 300);
        assert_eq!(counts.len(), 2);
        assert!((counts[0] as f64 / 300.0 - 4.0 / 6.0).abs() < 0.02);
        // Small totals still give every present class at least one sample.
        let counts = d.matched_label_counts(10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c >= 1));
    }
}
