//! # p3gm-datasets
//!
//! Synthetic stand-ins for the six evaluation datasets of the P3GM paper.
//!
//! The original datasets (Kaggle Credit, Adult, UCI ISOLET, UCI ESR, MNIST,
//! Fashion-MNIST) cannot be shipped with this repository, so this crate
//! generates synthetic datasets that preserve the *structural* properties
//! the paper's experiments exercise — dimensionality regime, number of
//! classes, class imbalance, the existence of a low-dimensional subspace
//! that PCA can find, and non-trivial (but learnable) class structure.  The
//! substitution is documented in `DESIGN.md` §4.
//!
//! * [`dataset`] — the [`dataset::Dataset`] container with train/test
//!   splitting, stratified subsampling and class statistics.
//! * [`tabular`] — generators for the Credit-, Adult-, ISOLET- and ESR-like
//!   tabular datasets.
//! * [`images`] — generators for the MNIST- and Fashion-MNIST-like image
//!   datasets (parametric stroke/texture classes on a configurable grid).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod images;
pub mod tabular;

pub use dataset::{Dataset, TrainTestSplit};

/// Identifies one of the paper's six evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Kaggle credit-card fraud detection (29 features, 0.2% positives).
    KaggleCredit,
    /// UCI Adult census income (15 features, 24.1% positives).
    Adult,
    /// UCI ISOLET spoken-letter features (617 features, 19.2% positives).
    Isolet,
    /// UCI Epileptic Seizure Recognition (179 features, 20% positives).
    Esr,
    /// MNIST handwritten digits (images, 10 classes).
    Mnist,
    /// Fashion-MNIST clothing images (images, 10 classes).
    FashionMnist,
}

impl DatasetKind {
    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::KaggleCredit => "Kaggle Credit",
            DatasetKind::Adult => "Adult",
            DatasetKind::Isolet => "UCI ISOLET",
            DatasetKind::Esr => "UCI ESR",
            DatasetKind::Mnist => "MNIST",
            DatasetKind::FashionMnist => "Fashion-MNIST",
        }
    }

    /// Whether the dataset is an image dataset (10 classes) rather than a
    /// binary tabular one.
    pub fn is_image(&self) -> bool {
        matches!(self, DatasetKind::Mnist | DatasetKind::FashionMnist)
    }

    /// The four binary tabular datasets of Table VI, in the paper's order.
    pub fn tabular_kinds() -> [DatasetKind; 4] {
        [
            DatasetKind::KaggleCredit,
            DatasetKind::Esr,
            DatasetKind::Adult,
            DatasetKind::Isolet,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_flags() {
        assert_eq!(DatasetKind::KaggleCredit.name(), "Kaggle Credit");
        assert!(DatasetKind::Mnist.is_image());
        assert!(!DatasetKind::Adult.is_image());
        assert_eq!(DatasetKind::tabular_kinds().len(), 4);
    }
}
