//! Synthetic image datasets mirroring MNIST and Fashion-MNIST.
//!
//! Every image is a `size × size` grayscale grid with pixel values in
//! `[0, 1]`, flattened row-major — the same format the paper's generative
//! models consume (MNIST is 28×28; the evaluation harness defaults to a
//! reduced resolution for single-core runtimes and records the scale factor
//! in `EXPERIMENTS.md`).
//!
//! * [`mnist_like`] renders ten digit-like stroke classes (vertical bar,
//!   horizontal bar, the two diagonals, a cross, a ring, the four corner L
//!   shapes) with per-sample jitter in position, thickness and intensity.
//! * [`fashion_mnist_like`] renders ten clothing-like silhouette classes
//!   (filled rectangles, T shapes, trousers-like split rectangles, …) with
//!   textured interiors.
//!
//! The classes are deliberately *not* trivially separable at low resolution
//! once jitter and noise are added, so a classifier trained on synthetic
//! data has headroom to show quality differences between generative models,
//! which is what Table VII measures.

use crate::dataset::Dataset;
use p3gm_linalg::Matrix;
use p3gm_privacy::sampling;
use rand::Rng;

/// Renders an MNIST-like dataset of `n` images at `size × size` resolution
/// with balanced classes (10 classes, like the digits).
pub fn mnist_like<R: Rng + ?Sized>(rng: &mut R, n: usize, size: usize) -> Dataset {
    stroke_dataset(rng, n, size, StrokeStyle::Digit, "MNIST")
}

/// Renders a Fashion-MNIST-like dataset of `n` images at `size × size`
/// resolution with balanced classes.
pub fn fashion_mnist_like<R: Rng + ?Sized>(rng: &mut R, n: usize, size: usize) -> Dataset {
    stroke_dataset(rng, n, size, StrokeStyle::Fashion, "Fashion-MNIST")
}

#[derive(Clone, Copy)]
enum StrokeStyle {
    Digit,
    Fashion,
}

fn stroke_dataset<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    size: usize,
    style: StrokeStyle,
    name: &str,
) -> Dataset {
    assert!(size >= 6, "images must be at least 6x6");
    assert!(n >= 10, "need at least one image per class");
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 10;
        let img = match style {
            StrokeStyle::Digit => render_digit_like(rng, size, label),
            StrokeStyle::Fashion => render_fashion_like(rng, size, label),
        };
        rows.push(img);
        labels.push(label);
    }
    use rand::seq::SliceRandom;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let features = Matrix::from_rows(&rows)
        .expect("images have equal size")
        .select_rows(&order)
        .expect("shuffle order is a permutation");
    let labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();
    Dataset::new(features, labels, 10, name)
}

/// Paints a thick anti-aliased line segment into the image.
#[allow(clippy::too_many_arguments)]
fn paint_line(
    img: &mut [f64],
    size: usize,
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    thickness: f64,
    intensity: f64,
) {
    let steps = (size * 3).max(8);
    for s in 0..=steps {
        let t = s as f64 / steps as f64;
        let cx = x0 + t * (x1 - x0);
        let cy = y0 + t * (y1 - y0);
        paint_disc(img, size, cx, cy, thickness, intensity);
    }
}

/// Paints a soft disc (Gaussian falloff) centred at `(cx, cy)`.
fn paint_disc(img: &mut [f64], size: usize, cx: f64, cy: f64, radius: f64, intensity: f64) {
    let r_int = radius.ceil() as isize + 1;
    let cxi = cx.round() as isize;
    let cyi = cy.round() as isize;
    for dy in -r_int..=r_int {
        for dx in -r_int..=r_int {
            let x = cxi + dx;
            let y = cyi + dy;
            if x < 0 || y < 0 || x >= size as isize || y >= size as isize {
                continue;
            }
            let dist2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
            let value = intensity * (-dist2 / (2.0 * radius * radius).max(1e-9)).exp();
            let idx = y as usize * size + x as usize;
            img[idx] = (img[idx] + value).min(1.0);
        }
    }
}

/// Paints an axis-aligned filled rectangle.
fn paint_rect(img: &mut [f64], size: usize, x0: f64, y0: f64, x1: f64, y1: f64, intensity: f64) {
    let xa = x0.max(0.0).round() as usize;
    let xb = (x1.min(size as f64 - 1.0)).round() as usize;
    let ya = y0.max(0.0).round() as usize;
    let yb = (y1.min(size as f64 - 1.0)).round() as usize;
    for y in ya..=yb.min(size - 1) {
        for x in xa..=xb.min(size - 1) {
            let idx = y * size + x;
            img[idx] = (img[idx] + intensity).min(1.0);
        }
    }
}

fn render_digit_like<R: Rng + ?Sized>(rng: &mut R, size: usize, label: usize) -> Vec<f64> {
    let s = size as f64;
    let mut img = vec![0.0; size * size];
    let jitter = || -> f64 { 0.0 };
    let _ = jitter;
    let jx = rng.gen_range(-0.08..0.08) * s;
    let jy = rng.gen_range(-0.08..0.08) * s;
    let thickness = s * rng.gen_range(0.06..0.12);
    let intensity = rng.gen_range(0.75..1.0);
    let lo = 0.2 * s;
    let hi = 0.8 * s;
    let mid = 0.5 * s;
    match label {
        // Ring ("0").
        0 => {
            let r = 0.3 * s;
            let steps = size * 4;
            for k in 0..steps {
                let a = std::f64::consts::TAU * k as f64 / steps as f64;
                paint_disc(
                    &mut img,
                    size,
                    mid + jx + r * a.cos(),
                    mid + jy + r * a.sin(),
                    thickness,
                    intensity / 3.0,
                );
            }
        }
        // Vertical bar ("1").
        1 => paint_line(
            &mut img,
            size,
            mid + jx,
            lo + jy,
            mid + jx,
            hi + jy,
            thickness,
            intensity / 3.0,
        ),
        // Horizontal bar.
        2 => paint_line(
            &mut img,
            size,
            lo + jx,
            mid + jy,
            hi + jx,
            mid + jy,
            thickness,
            intensity / 3.0,
        ),
        // Main diagonal.
        3 => paint_line(
            &mut img,
            size,
            lo + jx,
            lo + jy,
            hi + jx,
            hi + jy,
            thickness,
            intensity / 3.0,
        ),
        // Anti-diagonal.
        4 => paint_line(
            &mut img,
            size,
            lo + jx,
            hi + jy,
            hi + jx,
            lo + jy,
            thickness,
            intensity / 3.0,
        ),
        // Cross.
        5 => {
            paint_line(
                &mut img,
                size,
                mid + jx,
                lo + jy,
                mid + jx,
                hi + jy,
                thickness,
                intensity / 3.0,
            );
            paint_line(
                &mut img,
                size,
                lo + jx,
                mid + jy,
                hi + jx,
                mid + jy,
                thickness,
                intensity / 3.0,
            );
        }
        // L shapes in the four orientations.
        6 => {
            paint_line(
                &mut img,
                size,
                lo + jx,
                lo + jy,
                lo + jx,
                hi + jy,
                thickness,
                intensity / 3.0,
            );
            paint_line(
                &mut img,
                size,
                lo + jx,
                hi + jy,
                hi + jx,
                hi + jy,
                thickness,
                intensity / 3.0,
            );
        }
        7 => {
            paint_line(
                &mut img,
                size,
                hi + jx,
                lo + jy,
                hi + jx,
                hi + jy,
                thickness,
                intensity / 3.0,
            );
            paint_line(
                &mut img,
                size,
                lo + jx,
                lo + jy,
                hi + jx,
                lo + jy,
                thickness,
                intensity / 3.0,
            );
        }
        8 => {
            paint_line(
                &mut img,
                size,
                lo + jx,
                lo + jy,
                hi + jx,
                lo + jy,
                thickness,
                intensity / 3.0,
            );
            paint_line(
                &mut img,
                size,
                lo + jx,
                lo + jy,
                lo + jx,
                hi + jy,
                thickness,
                intensity / 3.0,
            );
            paint_line(
                &mut img,
                size,
                lo + jx,
                hi + jy,
                hi + jx,
                hi + jy,
                thickness,
                intensity / 3.0,
            );
        }
        // X plus vertical ("9"-ish asterisk).
        _ => {
            paint_line(
                &mut img,
                size,
                lo + jx,
                lo + jy,
                hi + jx,
                hi + jy,
                thickness,
                intensity / 3.0,
            );
            paint_line(
                &mut img,
                size,
                lo + jx,
                hi + jy,
                hi + jx,
                lo + jy,
                thickness,
                intensity / 3.0,
            );
            paint_line(
                &mut img,
                size,
                mid + jx,
                lo + jy,
                mid + jx,
                hi + jy,
                thickness,
                intensity / 3.0,
            );
        }
    }
    add_pixel_noise(rng, &mut img, 0.03);
    img
}

fn render_fashion_like<R: Rng + ?Sized>(rng: &mut R, size: usize, label: usize) -> Vec<f64> {
    let s = size as f64;
    let mut img = vec![0.0; size * size];
    let jx = rng.gen_range(-0.06..0.06) * s;
    let jy = rng.gen_range(-0.06..0.06) * s;
    let fill = rng.gen_range(0.5..0.8);
    let lo = 0.2 * s;
    let hi = 0.8 * s;
    let mid = 0.5 * s;
    match label {
        // Full square (coat-like).
        0 => paint_rect(&mut img, size, lo + jx, lo + jy, hi + jx, hi + jy, fill),
        // Wide top rectangle (t-shirt body).
        1 => paint_rect(&mut img, size, lo + jx, lo + jy, hi + jx, mid + jy, fill),
        // Tall narrow rectangle (dress).
        2 => paint_rect(
            &mut img,
            size,
            0.35 * s + jx,
            lo + jy,
            0.65 * s + jx,
            hi + jy,
            fill,
        ),
        // Two vertical legs (trousers).
        3 => {
            paint_rect(
                &mut img,
                size,
                lo + jx,
                lo + jy,
                0.4 * s + jx,
                hi + jy,
                fill,
            );
            paint_rect(
                &mut img,
                size,
                0.6 * s + jx,
                lo + jy,
                hi + jx,
                hi + jy,
                fill,
            );
        }
        // Bottom rectangle (shoe).
        4 => paint_rect(&mut img, size, lo + jx, mid + jy, hi + jx, hi + jy, fill),
        // T shape (pullover with arms).
        5 => {
            paint_rect(
                &mut img,
                size,
                lo + jx,
                lo + jy,
                hi + jx,
                0.4 * s + jy,
                fill,
            );
            paint_rect(
                &mut img,
                size,
                0.4 * s + jx,
                lo + jy,
                0.6 * s + jx,
                hi + jy,
                fill,
            );
        }
        // Left half (bag).
        6 => paint_rect(&mut img, size, lo + jx, lo + jy, mid + jx, hi + jy, fill),
        // Right half.
        7 => paint_rect(&mut img, size, mid + jx, lo + jy, hi + jx, hi + jy, fill),
        // Frame (hollow square).
        8 => {
            paint_rect(&mut img, size, lo + jx, lo + jy, hi + jx, hi + jy, fill);
            paint_rect(
                &mut img,
                size,
                0.35 * s + jx,
                0.35 * s + jy,
                0.65 * s + jx,
                0.65 * s + jy,
                -fill,
            );
            for v in img.iter_mut() {
                *v = v.max(0.0);
            }
        }
        // Diagonal band (sandal strap).
        _ => {
            let t = s * 0.12;
            paint_line(
                &mut img,
                size,
                lo + jx,
                hi + jy,
                hi + jx,
                lo + jy,
                t,
                fill / 2.5,
            );
        }
    }
    // Texture: multiplicative speckle inside the silhouette.
    for v in img.iter_mut() {
        if *v > 0.05 {
            *v = (*v * rng.gen_range(0.8..1.2)).clamp(0.0, 1.0);
        }
    }
    add_pixel_noise(rng, &mut img, 0.03);
    img
}

fn add_pixel_noise<R: Rng + ?Sized>(rng: &mut R, img: &mut [f64], std: f64) {
    for v in img.iter_mut() {
        *v = (*v + sampling::normal(rng, 0.0, std)).clamp(0.0, 1.0);
    }
}

/// Renders a grid of images (one flattened image per matrix row) as ASCII
/// art (one character per pixel), used by the Figure 2 reproduction to dump
/// sample sheets into a text report.
pub fn ascii_art(images: &Matrix, size: usize, per_row: usize) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for chunk in images.rows_chunks(per_row.max(1)) {
        for y in 0..size {
            for img in chunk.chunks(images.cols().max(1)) {
                for x in 0..size {
                    let v = img
                        .get(y * size + x)
                        .copied()
                        .unwrap_or(0.0)
                        .clamp(0.0, 1.0);
                    let idx = (v * (SHADES.len() - 1) as f64).round() as usize;
                    out.push(SHADES[idx]);
                }
                out.push(' ');
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(43)
    }

    #[test]
    fn mnist_like_shape_and_range() {
        let mut r = rng();
        let d = mnist_like(&mut r, 200, 12);
        assert_eq!(d.n_samples(), 200);
        assert_eq!(d.n_features(), 144);
        assert_eq!(d.n_classes, 10);
        assert!(d
            .features
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
        // Roughly balanced classes.
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c == 20), "{counts:?}");
    }

    #[test]
    fn fashion_like_shape_and_range() {
        let mut r = rng();
        let d = fashion_mnist_like(&mut r, 100, 10);
        assert_eq!(d.n_features(), 100);
        assert_eq!(d.n_classes, 10);
        assert!(d
            .features
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn images_are_not_blank_and_not_saturated() {
        let mut r = rng();
        let d = mnist_like(&mut r, 50, 14);
        for row in d.features.row_iter() {
            let mean: f64 = row.iter().sum::<f64>() / row.len() as f64;
            assert!(mean > 0.01, "image nearly blank: mean {mean}");
            assert!(mean < 0.9, "image nearly saturated: mean {mean}");
        }
    }

    #[test]
    fn classes_differ_in_mean_image() {
        let mut r = rng();
        let d = mnist_like(&mut r, 400, 12);
        // Mean image of class 1 (vertical bar) differs strongly from class 2
        // (horizontal bar).
        let mean_img = |label: usize| -> Vec<f64> {
            let sub = d.filter_by_label(label);
            p3gm_linalg::stats::column_means(&sub.features).unwrap()
        };
        let v = mean_img(1);
        let h = mean_img(2);
        let dist = p3gm_linalg::vector::distance(&v, &h);
        assert!(
            dist > 1.0,
            "vertical and horizontal bars too similar: {dist}"
        );
        // Same class across two draws is much closer than different classes.
        let v2 = mean_img(1);
        assert!(p3gm_linalg::vector::distance(&v, &v2) < 1e-12);
    }

    #[test]
    fn fashion_classes_differ_in_mass_distribution() {
        let mut r = rng();
        let d = fashion_mnist_like(&mut r, 400, 12);
        // Trousers (3) leave the image centre darker than the full square (0).
        let centre_mass = |label: usize| -> f64 {
            let sub = d.filter_by_label(label);
            let means = p3gm_linalg::stats::column_means(&sub.features).unwrap();
            let size = 12;
            let mut acc = 0.0;
            for y in 5..7 {
                for x in 5..7 {
                    acc += means[y * size + x];
                }
            }
            acc
        };
        assert!(centre_mass(0) > centre_mass(3) + 0.2);
    }

    #[test]
    fn ascii_art_has_expected_dimensions() {
        let mut r = rng();
        let d = mnist_like(&mut r, 10, 8);
        let imgs = d.features.select_rows(&[0, 1, 2, 3]).unwrap();
        let art = ascii_art(&imgs, 8, 2);
        let lines: Vec<&str> = art.lines().collect();
        // 2 rows of images * 8 pixel rows + blank separators.
        assert!(lines.len() >= 16);
        // Each rendered line is 2 images * (8 px + 1 space).
        assert!(lines[0].len() >= 17);
        assert!(art.chars().any(|c| c != ' ' && c != '\n'));
    }

    #[test]
    #[should_panic(expected = "at least 6x6")]
    fn tiny_images_rejected() {
        let mut r = rng();
        let _ = mnist_like(&mut r, 20, 4);
    }

    #[test]
    #[should_panic(expected = "at least one image per class")]
    fn too_few_images_rejected() {
        let mut r = rng();
        let _ = mnist_like(&mut r, 5, 10);
    }
}
