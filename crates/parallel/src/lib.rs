//! # p3gm-parallel
//!
//! Std-only, deterministic data parallelism for the P3GM workspace.
//!
//! The numeric hot paths of the reproduction (per-example DP-SGD gradients,
//! the DP-EM E-step, PCA covariance accumulation, batched matrix products)
//! are all embarrassingly parallel over rows of a contiguous
//! `p3gm_linalg::Matrix` batch. This crate provides the minimal scoped
//! thread-pool primitives those kernels need, with one hard guarantee:
//!
//! **Results are bit-identical regardless of the number of worker threads.**
//!
//! Determinism is achieved structurally, not by locking:
//!
//! * Work is split into *chunks* whose boundaries depend only on the problem
//!   size (never on the thread count) — see [`chunk_count`].
//! * Chunks are mapped independently; writes are to disjoint regions.
//! * Reductions combine per-chunk partial results **sequentially, in chunk
//!   order** on the calling thread, so floating-point accumulation order is
//!   fixed. A run with one thread and a run with sixteen fold the exact same
//!   partials in the exact same order.
//!
//! The worker count is resolved per call site by [`max_threads`]:
//! a scoped [`with_threads`] override (used by benchmarks and the
//! determinism test-suite) takes precedence, then the `P3GM_THREADS`
//! environment variable, then [`std::thread::available_parallelism`].
//! Parallelism does **not** nest: a kernel invoked from inside a worker
//! thread runs serially on that worker, so one fan-out level never
//! oversubscribes the machine and a pinned thread count is honored
//! transitively.
//!
//! Everything is implemented with [`std::thread::scope`] — no unsafe code,
//! no dependencies — so the workspace keeps building offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunks currently executing across every kernel in the process.
static CHUNKS_IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);
/// Chunks ever dispatched (monotone; identical for any thread count because
/// chunk boundaries are a pure function of the problem size).
static CHUNKS_TOTAL: AtomicU64 = AtomicU64::new(0);
/// Worker closures ever run through [`scope`] (monotone).
static SCOPE_TASKS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide pool counters, for
/// observability exporters (the HTTP server re-exports these on
/// `GET /metrics`). This crate deliberately has no dependency on the
/// metrics registry; it only exposes raw counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Chunks executing right now (the queue-depth gauge). Instantaneous
    /// and inherently racy; 0 whenever the process is quiescent.
    pub chunks_in_flight: usize,
    /// Total chunks dispatched since process start. Deterministic across
    /// thread counts for a fixed workload (chunk boundaries never depend
    /// on the worker count).
    pub chunks_total: u64,
    /// Total worker closures run through [`scope`] since process start.
    pub scope_tasks_total: u64,
}

/// Read the process-wide pool counters. Each field is loaded independently
/// (relaxed), so a snapshot taken mid-kernel may tear between fields; the
/// monotone totals are individually exact.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        chunks_in_flight: CHUNKS_IN_FLIGHT.load(Ordering::Relaxed),
        chunks_total: CHUNKS_TOTAL.load(Ordering::Relaxed),
        scope_tasks_total: SCOPE_TASKS_TOTAL.load(Ordering::Relaxed),
    }
}

/// RAII accounting for one executing chunk: bumps the monotone total and
/// holds the in-flight gauge for the duration (panic-safe via `Drop`).
struct ChunkGuard;

impl ChunkGuard {
    fn begin() -> Self {
        CHUNKS_IN_FLIGHT.fetch_add(1, Ordering::Relaxed);
        CHUNKS_TOTAL.fetch_add(1, Ordering::Relaxed);
        ChunkGuard
    }
}

impl Drop for ChunkGuard {
    fn drop(&mut self) {
        CHUNKS_IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel kernels invoked from this thread
/// will use.
///
/// Resolution order: a [`with_threads`] override on the calling thread, the
/// `P3GM_THREADS` environment variable (a positive integer), then the
/// machine's [`std::thread::available_parallelism`]. Always at least 1.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(value) = std::env::var("P3GM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` with the worker-thread count pinned to `n` on the calling
/// thread (nested calls restore the previous override on exit, including on
/// panic).
///
/// Used by the kernel benchmarks (`threads=1/2/4` sweeps) and the
/// determinism property tests; library code normally relies on the ambient
/// [`max_threads`] resolution.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let previous = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = Restore(previous);
    f()
}

/// Number of fixed-size chunks a problem of `n_items` splits into.
///
/// The boundaries depend only on `n_items` and `chunk_len` — never on the
/// thread count — which is what makes chunked reductions deterministic.
pub fn chunk_count(n_items: usize, chunk_len: usize) -> usize {
    n_items.div_ceil(chunk_len.max(1))
}

/// The default chunk length for a problem of `n_items` work items.
///
/// Targets a fixed number of chunks (64) independent of the machine, so
/// chunk boundaries — and therefore reduction order — are a pure function
/// of the problem size. 64 chunks keep every realistic worker count busy
/// while amortizing dispatch overhead.
pub fn default_chunk_len(n_items: usize) -> usize {
    n_items.div_ceil(64).max(1)
}

/// The default chunk length rounded **up** to a whole number of `tile`-row
/// groups, for row-parallel kernels whose microkernel processes `tile` rows
/// at a time.
///
/// Every chunk except possibly the last then holds only whole tiles, so a
/// register-tiled kernel never straddles a chunk boundary mid-tile. Like
/// [`default_chunk_len`], the result depends only on the problem size —
/// never on the thread count — preserving bit-identical chunk boundaries.
pub fn default_tile(n_items: usize, tile: usize) -> usize {
    let tile = tile.max(1);
    default_chunk_len(n_items).div_ceil(tile) * tile
}

/// The index range covered by chunk `index` of a problem of `n_items` items
/// split into `chunk_len`-sized chunks.
pub fn chunk_range(n_items: usize, chunk_len: usize, index: usize) -> Range<usize> {
    let chunk_len = chunk_len.max(1);
    let start = index * chunk_len;
    start..((start + chunk_len).min(n_items))
}

/// Runs a worker closure on a spawned thread with nested parallel kernels
/// pinned to serial: worker threads are already the parallelism, so a
/// kernel invoked *inside* one (e.g. a classifier's batched forward pass
/// inside the suite fan-out) must not spawn its own workers on top —
/// that would oversubscribe the machine and ignore a [`with_threads`] pin
/// on the caller (the override is thread-local and would otherwise not be
/// visible on the worker).
fn run_pinned_serial<R>(f: impl FnOnce() -> R) -> R {
    with_threads(1, f)
}

/// Runs the closures of `workers` concurrently and waits for all of them
/// (the task-parallel primitive for irregular shapes, e.g. a handful of
/// independent model fits). At most [`max_threads`] threads are spawned;
/// excess closures are distributed round-robin and run in index order on
/// their worker. Nested parallel kernels inside a worker run serially (see
/// the crate docs), so the total thread count stays bounded by the
/// configured limit.
///
/// With a single worker (or a single configured thread) the closures run
/// inline on the calling thread, in order.
pub fn scope<F: FnOnce() + Send>(workers: Vec<F>) {
    let threads = max_threads().min(workers.len());
    if threads <= 1 {
        for w in workers {
            SCOPE_TASKS_TOTAL.fetch_add(1, Ordering::Relaxed);
            w();
        }
        return;
    }
    let mut queues: Vec<Vec<F>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, w) in workers.into_iter().enumerate() {
        queues[i % threads].push(w);
    }
    std::thread::scope(|s| {
        for queue in queues {
            s.spawn(move || {
                run_pinned_serial(|| {
                    for w in queue {
                        SCOPE_TASKS_TOTAL.fetch_add(1, Ordering::Relaxed);
                        w();
                    }
                })
            });
        }
    });
}

/// Maps `f` over chunk indices `0..n_chunks` on up to [`max_threads`]
/// workers and returns the results **in chunk order**.
///
/// `f` must depend only on its chunk index (and captured shared state);
/// scheduling is dynamic (atomic work counter) but the output order is
/// index-sorted, so the result is independent of the thread count. Nested
/// parallel kernels invoked from inside `f` run serially on their worker.
pub fn par_map_chunks<R: Send>(n_chunks: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = max_threads().min(n_chunks);
    if threads <= 1 {
        return (0..n_chunks)
            .map(|index| {
                let _chunk = ChunkGuard::begin();
                f(index)
            })
            .collect();
    }
    let counter = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    run_pinned_serial(|| {
                        let mut local = Vec::new();
                        loop {
                            let index = counter.fetch_add(1, Ordering::Relaxed);
                            if index >= n_chunks {
                                break;
                            }
                            let _chunk = ChunkGuard::begin();
                            local.push((index, f(index)));
                        }
                        local
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("p3gm-parallel worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|(index, _)| *index);
    tagged.into_iter().map(|(_, value)| value).collect()
}

/// Splits `data` into `chunk_len`-sized chunks, applies `f(chunk_index,
/// chunk)` to each on up to [`max_threads`] workers, and returns the
/// per-chunk results **in chunk order**.
///
/// This is the mutable workhorse: disjoint `&mut` chunks are handed to
/// workers (so e.g. each worker fills its rows of a per-example gradient
/// matrix) while the per-chunk return values carry side statistics (losses,
/// partial sums) back for an in-order fold.
pub fn par_chunks_mut_map<T: Send, R: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    let chunk_len = chunk_len.max(1);
    let n_chunks = chunk_count(data.len(), chunk_len);
    let threads = max_threads().min(n_chunks);
    if threads <= 1 {
        return data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(index, chunk)| {
                let _chunk = ChunkGuard::begin();
                f(index, chunk)
            })
            .collect();
    }
    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    run_pinned_serial(|| {
                        let mut local = Vec::new();
                        loop {
                            let next = queue.lock().expect("p3gm-parallel queue poisoned").next();
                            match next {
                                Some((index, chunk)) => {
                                    let _chunk = ChunkGuard::begin();
                                    local.push((index, f(index, chunk)));
                                }
                                None => break,
                            }
                        }
                        local
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("p3gm-parallel worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|(index, _)| *index);
    tagged.into_iter().map(|(_, value)| value).collect()
}

/// Like [`par_chunks_mut_map`] but discards the per-chunk results.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    par_chunks_mut_map(data, chunk_len, f);
}

/// Deterministic ordered map-reduce over the index range `0..n_items`.
///
/// The range is split into `chunk_len`-sized chunks (boundaries depend only
/// on `n_items`), `map` produces one partial result per chunk in parallel,
/// and `reduce` folds the partials **sequentially in chunk order** on the
/// calling thread. Returns `None` for an empty range.
///
/// Because both the chunk boundaries and the fold order are fixed, the
/// result is bit-identical for every thread count — including 1. To bound
/// peak memory when the partials are large (e.g. per-chunk Gram matrices),
/// chunks are processed in waves of a few per worker and each wave's
/// partials are folded before the next wave is mapped; the wave size only
/// groups identical partials under the same in-order fold, so it does not
/// affect the result.
pub fn par_map_reduce<R: Send>(
    n_items: usize,
    chunk_len: usize,
    map: impl Fn(Range<usize>) -> R + Sync,
    mut reduce: impl FnMut(R, R) -> R,
) -> Option<R> {
    if n_items == 0 {
        return None;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = chunk_count(n_items, chunk_len);
    let wave = (max_threads() * 4).max(1);
    let mut acc: Option<R> = None;
    let mut start = 0;
    while start < n_chunks {
        let end = (start + wave).min(n_chunks);
        let partials = par_map_chunks(end - start, |offset| {
            map(chunk_range(n_items, chunk_len, start + offset))
        });
        for partial in partials {
            acc = Some(match acc {
                None => partial,
                Some(folded) => reduce(folded, partial),
            });
        }
        start = end;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_a_pure_function_of_the_problem_size() {
        assert_eq!(chunk_count(10, 3), 4);
        assert_eq!(chunk_count(0, 3), 0);
        assert_eq!(chunk_range(10, 3, 0), 0..3);
        assert_eq!(chunk_range(10, 3, 3), 9..10);
        assert_eq!(default_chunk_len(0), 1);
        assert_eq!(default_chunk_len(64), 1);
        assert_eq!(default_chunk_len(6400), 100);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let ambient = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            with_threads(1, || assert_eq!(max_threads(), 1));
            assert_eq!(max_threads(), 3);
        });
        assert_eq!(max_threads(), ambient);
    }

    #[test]
    fn par_map_chunks_preserves_chunk_order() {
        for threads in [1, 2, 4, 8] {
            let out = with_threads(threads, || par_map_chunks(100, |i| i * i));
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_regions() {
        for threads in [1, 2, 4] {
            let mut data = vec![0usize; 103];
            with_threads(threads, || {
                par_chunks_mut(&mut data, 7, |index, chunk| {
                    for (offset, value) in chunk.iter_mut().enumerate() {
                        *value = index * 7 + offset;
                    }
                });
            });
            assert_eq!(data, (0..103).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_mut_map_returns_ordered_side_results() {
        let mut data = vec![1.0f64; 50];
        let sums = with_threads(4, || {
            par_chunks_mut_map(&mut data, 8, |_, chunk| {
                for value in chunk.iter_mut() {
                    *value *= 2.0;
                }
                chunk.len()
            })
        });
        assert_eq!(sums, vec![8, 8, 8, 8, 8, 8, 2]);
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn par_map_reduce_is_bit_identical_across_thread_counts() {
        // A floating-point sum whose value depends on accumulation order:
        // identical bits across thread counts proves the order is fixed.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 * 1e-3 + 1e-12 * i as f64)
            .collect();
        let sum_with = |threads: usize| {
            with_threads(threads, || {
                par_map_reduce(
                    values.len(),
                    default_chunk_len(values.len()),
                    |range| values[range].iter().sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap()
            })
        };
        let reference = sum_with(1);
        for threads in [2, 3, 4, 16] {
            assert_eq!(reference.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn nested_kernels_run_serially_inside_workers() {
        // A kernel invoked from inside a worker must see a pinned serial
        // thread count, so fan-outs cannot oversubscribe and a caller's
        // with_threads pin is honored transitively.
        let nested_counts = with_threads(4, || par_map_chunks(8, |_| max_threads()));
        assert!(nested_counts.iter().all(|&n| n == 1), "{nested_counts:?}");
        // Inline execution (single thread) keeps the ambient setting.
        let inline_counts = with_threads(1, || par_map_chunks(3, |_| max_threads()));
        assert!(inline_counts.iter().all(|&n| n == 1));
    }

    #[test]
    fn scope_caps_workers_and_pins_nested_kernels() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let workers: Vec<_> = (0..6)
            .map(|i| {
                let seen = &seen;
                move || {
                    seen.lock().unwrap().push((i, max_threads()));
                }
            })
            .collect();
        with_threads(2, || scope(workers));
        let mut results = seen.into_inner().unwrap();
        results.sort_unstable();
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|&(_, threads)| threads == 1));
    }

    #[test]
    fn par_map_reduce_empty_is_none() {
        assert_eq!(
            par_map_reduce(0, 4, |_| 0.0f64, |a, b| a + b).map(|v| v.to_bits()),
            None
        );
    }

    #[test]
    fn scope_runs_every_worker() {
        use std::sync::atomic::AtomicUsize;
        let hits = AtomicUsize::new(0);
        let workers: Vec<_> = (0..5)
            .map(|_| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        scope(workers);
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pool_stats_totals_are_monotone_and_count_chunks() {
        // Other tests in this binary run concurrently, so only assert on
        // deltas of the monotone totals — they can over-count, never under.
        let before = pool_stats();
        with_threads(2, || {
            par_map_chunks(10, |i| i);
        });
        let mid = pool_stats();
        assert!(mid.chunks_total >= before.chunks_total + 10);
        scope((0..3).map(|_| || ()).collect::<Vec<_>>());
        let after = pool_stats();
        assert!(after.scope_tasks_total >= mid.scope_tasks_total + 3);
    }

    #[test]
    fn env_override_is_read_when_no_scoped_override() {
        // Can only be asserted when the variable is absent or the scoped
        // override is active; the scoped override always wins.
        with_threads(2, || assert_eq!(max_threads(), 2));
        assert!(max_threads() >= 1);
    }
}
