//! Gradient boosting with regression trees on the binomial deviance —
//! the analogue of scikit-learn's `GradientBoostingClassifier`, the `GBM`
//! row of Table V.

use crate::tree::{GradientTree, TreeConfig};
use crate::BinaryClassifier;
use p3gm_linalg::Matrix;
use p3gm_nn::activation::sigmoid;

/// Binary gradient-boosted trees (Friedman's GBM with logistic loss).
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    trees: Vec<GradientTree>,
    base_score: f64,
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Configuration of the individual trees.
    pub tree_config: TreeConfig,
}

impl Default for GradientBoosting {
    fn default() -> Self {
        GradientBoosting {
            trees: Vec::new(),
            base_score: 0.0,
            n_estimators: 50,
            learning_rate: 0.1,
            // Mirrors the paper's sklearn settings (max_depth=8 shrunk to 4
            // for the reduced dataset sizes, min_samples_leaf scaled down).
            tree_config: TreeConfig {
                max_depth: 4,
                min_samples_leaf: 5,
                min_child_weight: 1e-3,
                lambda: 0.0,
            },
        }
    }
}

impl GradientBoosting {
    /// Creates a GBM with the given number of rounds and learning rate.
    pub fn new(n_estimators: usize, learning_rate: f64) -> Self {
        GradientBoosting {
            n_estimators,
            learning_rate,
            ..Default::default()
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The raw additive score (log-odds) for one row.
    pub fn decision_function(&self, row: &[f64]) -> f64 {
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.learning_rate * t.predict(row))
                .sum::<f64>()
    }
}

impl BinaryClassifier for GradientBoosting {
    fn fit(&mut self, x: &Matrix, labels: &[usize]) {
        assert_eq!(x.rows(), labels.len(), "row/label mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let n = x.rows();
        let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        // Initialize with the log-odds of the positive rate.
        let pos_rate = (y.iter().sum::<f64>() / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (pos_rate / (1.0 - pos_rate)).ln();
        self.trees.clear();

        let mut scores = vec![self.base_score; n];
        for _ in 0..self.n_estimators {
            // Logistic loss: gradient = p − y, hessian = p(1 − p).
            let mut grads = vec![0.0; n];
            let mut hessians = vec![0.0; n];
            for i in 0..n {
                let p = sigmoid(scores[i]);
                grads[i] = p - y[i];
                hessians[i] = (p * (1.0 - p)).max(1e-6);
            }
            let tree = GradientTree::fit(x, &grads, &hessians, self.tree_config);
            for (i, score) in scores.iter_mut().enumerate() {
                *score += self.learning_rate * tree.predict(x.row(i));
            }
            self.trees.push(tree);
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision_function(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, auroc};
    use p3gm_privacy::sampling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(71)
    }

    fn xor_data(rng: &mut StdRng, n: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a = rng.gen_bool(0.5);
            let b = rng.gen_bool(0.5);
            rows.push(vec![
                a as i32 as f64 + sampling::normal(rng, 0.0, 0.15),
                b as i32 as f64 + sampling::normal(rng, 0.0, 0.15),
            ]);
            labels.push(usize::from(a ^ b));
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn fits_xor_which_defeats_linear_models() {
        let mut r = rng();
        let (x, y) = xor_data(&mut r, 300);
        let mut model = GradientBoosting::new(40, 0.3);
        model.fit(&x, &y);
        let preds: Vec<usize> = x.row_iter().map(|row| model.predict(row)).collect();
        assert!(accuracy(&preds, &y) > 0.9);
        assert_eq!(model.n_trees(), 40);
    }

    #[test]
    fn base_score_matches_prior_without_trees() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let y = vec![1, 0, 0, 0];
        let mut model = GradientBoosting::new(0, 0.1);
        model.fit(&x, &y);
        assert!((model.predict_score(&[0.0]) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn auroc_improves_with_boosting_rounds() {
        let mut r = rng();
        let (x, y) = xor_data(&mut r, 300);
        let auc_for = |rounds: usize| {
            let mut m = GradientBoosting::new(rounds, 0.3);
            m.fit(&x, &y);
            auroc(&m.predict_scores(&x), &y)
        };
        let few = auc_for(1);
        let many = auc_for(30);
        assert!(many >= few, "few {few}, many {many}");
        assert!(many > 0.95);
    }

    #[test]
    fn handles_heavily_imbalanced_data() {
        let mut r = rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..500 {
            let label = usize::from(i < 10);
            let shift = if label == 1 { 3.0 } else { 0.0 };
            rows.push(vec![
                shift + sampling::normal(&mut r, 0.0, 1.0),
                sampling::normal(&mut r, 0.0, 1.0),
            ]);
            labels.push(label);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut model = GradientBoosting::default();
        model.fit(&x, &labels);
        let scores = model.predict_scores(&x);
        assert!(auroc(&scores, &labels) > 0.9);
    }

    #[test]
    fn scores_are_probabilities() {
        let mut r = rng();
        let (x, y) = xor_data(&mut r, 100);
        let mut model = GradientBoosting::new(10, 0.2);
        model.fit(&x, &y);
        for row in x.row_iter() {
            let p = model.predict_score(row);
            assert!((0.0..=1.0).contains(&p), "score {p}");
        }
    }
}
