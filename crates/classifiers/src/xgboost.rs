//! XGBoost-style second-order boosting — Newton boosting with L2-regularized
//! leaf weights (Chen & Guestrin's objective), the `XgBoost` row of Table V.
//!
//! Structurally this shares the gradient tree with [`crate::gbm`]; the
//! differences are exactly the ones that define XGBoost: second-order leaf
//! weights with an explicit L2 penalty λ, a `min_child_weight` constraint on
//! the hessian mass of every leaf, and column subsampling per tree.

use crate::tree::{GradientTree, TreeConfig};
use crate::BinaryClassifier;
use p3gm_linalg::Matrix;
use p3gm_nn::activation::sigmoid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Binary XGBoost-style booster.
#[derive(Debug, Clone)]
pub struct XgBoost {
    trees: Vec<(GradientTree, Vec<usize>)>,
    base_score: f64,
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to every tree.
    pub learning_rate: f64,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum hessian mass per leaf.
    pub min_child_weight: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Fraction of features sampled per tree (`colsample_bytree`).
    pub colsample_bytree: f64,
    /// Seed for the column subsampling.
    pub seed: u64,
}

impl Default for XgBoost {
    fn default() -> Self {
        XgBoost {
            trees: Vec::new(),
            base_score: 0.0,
            n_estimators: 50,
            learning_rate: 0.2,
            lambda: 1.0,
            min_child_weight: 1.0,
            max_depth: 4,
            colsample_bytree: 0.9,
            seed: 0,
        }
    }
}

impl XgBoost {
    /// Creates a booster with the given number of rounds.
    pub fn new(n_estimators: usize, learning_rate: f64, lambda: f64) -> Self {
        XgBoost {
            n_estimators,
            learning_rate,
            lambda,
            ..Default::default()
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Raw additive log-odds score for one row.
    pub fn decision_function(&self, row: &[f64]) -> f64 {
        let mut score = self.base_score;
        for (tree, cols) in &self.trees {
            let sub: Vec<f64> = cols.iter().map(|&c| row[c]).collect();
            score += self.learning_rate * tree.predict(&sub);
        }
        score
    }
}

impl BinaryClassifier for XgBoost {
    fn fit(&mut self, x: &Matrix, labels: &[usize]) {
        assert_eq!(x.rows(), labels.len(), "row/label mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let n = x.rows();
        let d = x.cols();
        let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        let pos_rate = (y.iter().sum::<f64>() / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (pos_rate / (1.0 - pos_rate)).ln();
        self.trees.clear();

        let mut col_rng = StdRng::seed_from_u64(self.seed);
        let n_cols = ((d as f64 * self.colsample_bytree).ceil() as usize).clamp(1, d);
        let tree_config = TreeConfig {
            max_depth: self.max_depth,
            min_samples_leaf: 2,
            min_child_weight: self.min_child_weight,
            lambda: self.lambda,
        };

        let mut scores = vec![self.base_score; n];
        for _ in 0..self.n_estimators {
            let mut grads = vec![0.0; n];
            let mut hessians = vec![0.0; n];
            for i in 0..n {
                let p = sigmoid(scores[i]);
                grads[i] = p - y[i];
                hessians[i] = (p * (1.0 - p)).max(1e-6);
            }
            // Column subsample.
            let mut cols: Vec<usize> = (0..d).collect();
            cols.shuffle(&mut col_rng);
            cols.truncate(n_cols);
            cols.sort_unstable();
            let sub = x.select_cols(&cols).expect("column indices in range");
            let tree = GradientTree::fit(&sub, &grads, &hessians, tree_config);
            for (i, score) in scores.iter_mut().enumerate() {
                let row: Vec<f64> = cols.iter().map(|&c| x.get(i, c)).collect();
                *score += self.learning_rate * tree.predict(&row);
            }
            self.trees.push((tree, cols));
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision_function(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, auroc};
    use p3gm_privacy::sampling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(81)
    }

    fn moons_like(rng: &mut StdRng, n: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.5) as usize;
            let t: f64 = rng.gen_range(0.0..std::f64::consts::PI);
            let (cx, cy, flip) = if label == 1 {
                (1.0, 0.3, -1.0)
            } else {
                (0.0, 0.0, 1.0)
            };
            rows.push(vec![
                cx + t.cos() * flip + sampling::normal(rng, 0.0, 0.15),
                cy + t.sin() * flip + sampling::normal(rng, 0.0, 0.15),
            ]);
            labels.push(label);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn fits_nonlinear_decision_boundary() {
        let mut r = rng();
        let (x, y) = moons_like(&mut r, 400);
        let mut model = XgBoost::new(40, 0.3, 1.0);
        model.fit(&x, &y);
        let preds: Vec<usize> = x.row_iter().map(|row| model.predict(row)).collect();
        assert!(accuracy(&preds, &y) > 0.9);
        assert_eq!(model.n_trees(), 40);
    }

    #[test]
    fn regularization_reduces_training_overfit_speed() {
        let mut r = rng();
        let (x, y) = moons_like(&mut r, 200);
        let auc_for = |lambda: f64| {
            let mut m = XgBoost::new(3, 0.5, lambda);
            m.colsample_bytree = 1.0;
            m.fit(&x, &y);
            auroc(&m.predict_scores(&x), &y)
        };
        // With very heavy regularization the (training) fit after a few
        // rounds is weaker than with light regularization.
        assert!(auc_for(0.01) >= auc_for(500.0));
    }

    #[test]
    fn column_subsampling_still_learns() {
        let mut r = rng();
        let (x, y) = moons_like(&mut r, 300);
        let mut model = XgBoost {
            colsample_bytree: 0.5,
            ..Default::default()
        };
        model.fit(&x, &y);
        assert!(auroc(&model.predict_scores(&x), &y) > 0.85);
    }

    #[test]
    fn base_score_only_model_predicts_prior() {
        let x = Matrix::zeros(10, 2);
        let y: Vec<usize> = (0..10).map(|i| usize::from(i < 3)).collect();
        let mut model = XgBoost::new(0, 0.1, 1.0);
        model.fit(&x, &y);
        assert!((model.predict_score(&[0.0, 0.0]) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r = rng();
        let (x, y) = moons_like(&mut r, 200);
        let mut a = XgBoost::default();
        let mut b = XgBoost::default();
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in x.row_iter().take(20) {
            assert_eq!(a.predict_score(row), b.predict_score(row));
        }
    }
}
