//! The paper's four-classifier evaluation protocol (Tables V and VI).
//!
//! Train each of LogisticRegression / AdaBoost / GBM / XgBoost on (possibly
//! synthetic) training data and evaluate AUROC / AUPRC on real test data,
//! then average across the four classifiers (Table VI reports exactly this
//! average).

use crate::adaboost::AdaBoost;
use crate::gbm::GradientBoosting;
use crate::logistic::LogisticRegression;
use crate::metrics::{auprc, auroc};
use crate::xgboost::XgBoost;
use crate::BinaryClassifier;
use p3gm_linalg::Matrix;

/// The four classifiers used by the paper's tabular evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Logistic regression.
    LogisticRegression,
    /// AdaBoost over decision stumps.
    AdaBoost,
    /// Gradient boosting (Friedman GBM).
    GradientBoosting,
    /// XGBoost-style second-order boosting.
    XgBoost,
}

impl ClassifierKind {
    /// All four classifiers in the paper's table order.
    pub fn all() -> [ClassifierKind; 4] {
        [
            ClassifierKind::LogisticRegression,
            ClassifierKind::AdaBoost,
            ClassifierKind::GradientBoosting,
            ClassifierKind::XgBoost,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierKind::LogisticRegression => "Logistic Regression",
            ClassifierKind::AdaBoost => "AdaBoost",
            ClassifierKind::GradientBoosting => "GBM",
            ClassifierKind::XgBoost => "XgBoost",
        }
    }

    /// Builds a fresh boxed instance with the harness's default
    /// hyper-parameters (scaled down from the paper's sklearn defaults to
    /// match the reduced synthetic dataset sizes).
    pub fn build(&self) -> Box<dyn BinaryClassifier> {
        match self {
            ClassifierKind::LogisticRegression => Box::new(LogisticRegression::default()),
            ClassifierKind::AdaBoost => Box::new(AdaBoost::new(30)),
            ClassifierKind::GradientBoosting => Box::new(GradientBoosting::new(30, 0.1)),
            ClassifierKind::XgBoost => Box::new(XgBoost::new(30, 0.2, 1.0)),
        }
    }
}

/// AUROC and AUPRC of one classifier on one train/test pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryScores {
    /// Area under the ROC curve.
    pub auroc: f64,
    /// Area under the precision-recall curve.
    pub auprc: f64,
}

/// Scores of all four classifiers plus their average — one cell group of
/// Table V / one row of Table VI.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-classifier scores in [`ClassifierKind::all`] order.
    pub per_classifier: Vec<(ClassifierKind, BinaryScores)>,
}

impl SuiteReport {
    /// Average AUROC across the four classifiers.
    pub fn mean_auroc(&self) -> f64 {
        self.per_classifier
            .iter()
            .map(|(_, s)| s.auroc)
            .sum::<f64>()
            / self.per_classifier.len().max(1) as f64
    }

    /// Average AUPRC across the four classifiers.
    pub fn mean_auprc(&self) -> f64 {
        self.per_classifier
            .iter()
            .map(|(_, s)| s.auprc)
            .sum::<f64>()
            / self.per_classifier.len().max(1) as f64
    }

    /// Score of one specific classifier.
    pub fn scores_for(&self, kind: ClassifierKind) -> Option<BinaryScores> {
        self.per_classifier
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
    }
}

/// Trains one classifier on `(train_x, train_y)` and scores it on
/// `(test_x, test_y)`.
pub fn evaluate_one(
    kind: ClassifierKind,
    train_x: &Matrix,
    train_y: &[usize],
    test_x: &Matrix,
    test_y: &[usize],
) -> BinaryScores {
    let mut model = kind.build();
    model.fit(train_x, train_y);
    let scores = model.predict_scores(test_x);
    BinaryScores {
        auroc: auroc(&scores, test_y),
        auprc: auprc(&scores, test_y),
    }
}

/// Runs the full four-classifier suite (the paper's Table V protocol).
///
/// The four classifiers are trained and scored concurrently (one per
/// `p3gm-parallel` worker); they share no state, so the report is identical
/// for every thread count.
pub fn evaluate_binary_suite(
    train_x: &Matrix,
    train_y: &[usize],
    test_x: &Matrix,
    test_y: &[usize],
) -> SuiteReport {
    let kinds = ClassifierKind::all();
    let scores = p3gm_parallel::par_map_chunks(kinds.len(), |i| {
        evaluate_one(kinds[i], train_x, train_y, test_x, test_y)
    });
    SuiteReport {
        per_classifier: kinds.into_iter().zip(scores).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3gm_privacy::sampling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(101)
    }

    fn separable(rng: &mut StdRng, n: usize, shift: f64) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.3) as usize;
            let offset = if label == 1 { shift } else { 0.0 };
            rows.push(vec![
                offset + sampling::normal(rng, 0.0, 1.0),
                sampling::normal(rng, 0.0, 1.0),
                sampling::normal(rng, 0.0, 1.0),
            ]);
            labels.push(label);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn all_four_classifiers_beat_chance_on_separable_data() {
        let mut r = rng();
        let (train_x, train_y) = separable(&mut r, 400, 2.5);
        let (test_x, test_y) = separable(&mut r, 200, 2.5);
        let report = evaluate_binary_suite(&train_x, &train_y, &test_x, &test_y);
        assert_eq!(report.per_classifier.len(), 4);
        for (kind, scores) in &report.per_classifier {
            assert!(scores.auroc > 0.8, "{} AUROC {}", kind.name(), scores.auroc);
            assert!(scores.auprc > 0.5, "{} AUPRC {}", kind.name(), scores.auprc);
        }
        assert!(report.mean_auroc() > 0.8);
        assert!(report.mean_auprc() > 0.5);
        assert!(report.scores_for(ClassifierKind::XgBoost).is_some());
    }

    #[test]
    fn garbage_training_data_scores_near_chance() {
        let mut r = rng();
        // Training labels are random noise → test AUROC should hover near 0.5.
        let (train_x, _) = separable(&mut r, 300, 0.0);
        let train_y: Vec<usize> = (0..300).map(|_| r.gen_bool(0.5) as usize).collect();
        let (test_x, test_y) = separable(&mut r, 200, 2.5);
        let report = evaluate_binary_suite(&train_x, &train_y, &test_x, &test_y);
        assert!(
            (report.mean_auroc() - 0.5).abs() < 0.2,
            "mean AUROC {}",
            report.mean_auroc()
        );
    }

    #[test]
    fn better_training_data_gives_better_scores() {
        // This is the core comparison the paper's tables rely on: training
        // data that reflects the real distribution scores higher than
        // training data that does not.
        let mut r = rng();
        let (good_x, good_y) = separable(&mut r, 300, 2.5);
        let (bad_x, bad_y) = separable(&mut r, 300, 0.0); // classes overlap entirely
        let (test_x, test_y) = separable(&mut r, 250, 2.5);
        let good = evaluate_binary_suite(&good_x, &good_y, &test_x, &test_y);
        let bad = evaluate_binary_suite(&bad_x, &bad_y, &test_x, &test_y);
        assert!(good.mean_auroc() > bad.mean_auroc() + 0.1);
        assert!(good.mean_auprc() > bad.mean_auprc());
    }

    #[test]
    fn kind_names_and_listing() {
        assert_eq!(ClassifierKind::all().len(), 4);
        assert_eq!(ClassifierKind::GradientBoosting.name(), "GBM");
        assert_eq!(
            ClassifierKind::LogisticRegression.name(),
            "Logistic Regression"
        );
    }
}
