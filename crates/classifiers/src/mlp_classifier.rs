//! Multi-class MLP softmax classifier.
//!
//! The paper's image experiments (Table VII, Figure 7c) train a small
//! convolutional classifier; this MLP head is the faster default used by
//! the evaluation harness on the reduced-resolution synthetic images, with
//! the full CNN available in `p3gm-nn::conv::SimpleCnn`.

use p3gm_linalg::{vector, Matrix};
use p3gm_nn::activation::Activation;
use p3gm_nn::loss::softmax_cross_entropy;
use p3gm_nn::mlp::Mlp;
use p3gm_nn::optimizer::{Adam, Optimizer};
use rand::seq::SliceRandom;
use rand::Rng;

/// A multi-class MLP classifier trained with Adam on softmax cross-entropy.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    net: Mlp,
    n_classes: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl MlpClassifier {
    /// Builds a classifier with one hidden layer of `hidden` units.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        n_features: usize,
        hidden: usize,
        n_classes: usize,
    ) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        MlpClassifier {
            net: Mlp::new(
                rng,
                &[n_features, hidden, n_classes],
                Activation::Relu,
                Activation::Identity,
            ),
            n_classes,
            epochs: 15,
            batch_size: 32,
            learning_rate: 1e-3,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Trains the classifier; returns the average loss of the final epoch.
    pub fn fit<R: Rng + ?Sized>(&mut self, rng: &mut R, x: &Matrix, labels: &[usize]) -> f64 {
        assert_eq!(x.rows(), labels.len(), "row/label mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        assert!(
            labels.iter().all(|&l| l < self.n_classes),
            "label out of range"
        );
        let n = x.rows();
        let mut optimizer = Adam::new(self.learning_rate);
        let mut params = self.net.params();
        let mut last_epoch_loss = 0.0;

        for _ in 0..self.epochs {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(self.batch_size.max(1)) {
                // Per-example passes run on parallel row chunks; the partial
                // gradients are folded in chunk order (deterministic for
                // every thread count). Chunks are floored at 8 examples so a
                // tiny mini-batch does not pay one thread dispatch and one
                // P-length partial per example.
                let (batch_loss, mut grads) = p3gm_parallel::par_map_reduce(
                    chunk.len(),
                    p3gm_parallel::default_chunk_len(chunk.len()).max(8),
                    |range| {
                        let mut grads = vec![0.0; self.net.num_params()];
                        let mut loss = 0.0;
                        for &i in &chunk[range] {
                            let cache = self.net.forward_cached(x.row(i));
                            let (l, grad_out) = softmax_cross_entropy(cache.output(), labels[i]);
                            loss += l;
                            self.net.backward(&cache, &grad_out, &mut grads);
                        }
                        (loss, grads)
                    },
                    |(loss_a, mut grads_a), (loss_b, grads_b)| {
                        vector::axpy(1.0, &grads_b, &mut grads_a);
                        (loss_a + loss_b, grads_a)
                    },
                )
                .unwrap_or_else(|| (0.0, vec![0.0; self.net.num_params()]));
                let scale = 1.0 / chunk.len() as f64;
                for g in &mut grads {
                    *g *= scale;
                }
                optimizer.step(&mut params, &grads);
                self.net.set_params(&params);
                epoch_loss += batch_loss;
            }
            last_epoch_loss = epoch_loss / n as f64;
        }
        last_epoch_loss
    }

    /// Class logits for one row.
    pub fn logits(&self, row: &[f64]) -> Vec<f64> {
        self.net.forward(row)
    }

    /// Class probabilities for one row.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        vector::softmax(&self.logits(row))
    }

    /// Predicted class for one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        vector::argmax(&self.logits(row)).unwrap_or(0)
    }

    /// Predicted classes for every row (one batched, parallel forward
    /// pass).
    pub fn predict_all(&self, x: &Matrix) -> Vec<usize> {
        self.net
            .forward_batch(x)
            .row_iter()
            .map(|logits| vector::argmax(logits).unwrap_or(0))
            .collect()
    }

    /// Accuracy on a labelled dataset.
    pub fn score(&self, x: &Matrix, labels: &[usize]) -> f64 {
        crate::metrics::accuracy(&self.predict_all(x), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3gm_privacy::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(91)
    }

    /// Three Gaussian blobs in 2-D, one per class.
    fn blobs(rng: &mut StdRng, per_class: usize) -> (Matrix, Vec<usize>) {
        let centers = [[-2.0, 0.0], [2.0, 0.0], [0.0, 3.0]];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (class, c) in centers.iter().enumerate() {
            for _ in 0..per_class {
                rows.push(vec![
                    c[0] + sampling::normal(rng, 0.0, 0.5),
                    c[1] + sampling::normal(rng, 0.0, 0.5),
                ]);
                labels.push(class);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_three_blobs() {
        let mut r = rng();
        let (x, y) = blobs(&mut r, 60);
        let mut clf = MlpClassifier::new(&mut r, 2, 16, 3);
        clf.epochs = 40;
        let final_loss = clf.fit(&mut r, &x, &y);
        assert!(final_loss < 0.5, "final loss {final_loss}");
        assert!(clf.score(&x, &y) > 0.9);
        assert_eq!(clf.n_classes(), 3);
    }

    #[test]
    fn probabilities_are_normalized() {
        let mut r = rng();
        let (x, y) = blobs(&mut r, 20);
        let mut clf = MlpClassifier::new(&mut r, 2, 8, 3);
        clf.epochs = 5;
        clf.fit(&mut r, &x, &y);
        let p = clf.predict_proba(x.row(0));
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut r = rng();
        let (x, y) = blobs(&mut r, 40);
        let mut short = MlpClassifier::new(&mut r, 2, 16, 3);
        short.epochs = 1;
        let mut long = short.clone();
        long.epochs = 30;
        let loss_short = short.fit(&mut r, &x, &y);
        let loss_long = long.fit(&mut r, &x, &y);
        assert!(loss_long < loss_short);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let mut r = rng();
        let mut clf = MlpClassifier::new(&mut r, 2, 4, 2);
        clf.fit(&mut r, &Matrix::zeros(2, 2), &[0, 5]);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        let mut r = rng();
        let _ = MlpClassifier::new(&mut r, 2, 4, 1);
    }
}
