//! AdaBoost over decision stumps (Freund & Schapire) — the `AdaBoost` row
//! of Tables V and VI.

use crate::tree::DecisionStump;
use crate::BinaryClassifier;
use p3gm_linalg::Matrix;
use p3gm_nn::activation::sigmoid;

/// Discrete AdaBoost with decision stumps as weak learners.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    stumps: Vec<(DecisionStump, f64)>,
    /// Number of boosting rounds.
    pub n_estimators: usize,
}

impl Default for AdaBoost {
    fn default() -> Self {
        AdaBoost {
            stumps: Vec::new(),
            n_estimators: 50,
        }
    }
}

impl AdaBoost {
    /// Creates an AdaBoost model with the given number of rounds.
    pub fn new(n_estimators: usize) -> Self {
        AdaBoost {
            stumps: Vec::new(),
            n_estimators,
        }
    }

    /// The fitted weak learners and their weights (empty before `fit`).
    pub fn estimators(&self) -> &[(DecisionStump, f64)] {
        &self.stumps
    }

    /// The boosted margin `Σ_m α_m h_m(x)` for one row.
    pub fn decision_function(&self, row: &[f64]) -> f64 {
        self.stumps
            .iter()
            .map(|(stump, alpha)| alpha * stump.predict(row))
            .sum()
    }
}

impl BinaryClassifier for AdaBoost {
    fn fit(&mut self, x: &Matrix, labels: &[usize]) {
        assert_eq!(x.rows(), labels.len(), "row/label mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let n = x.rows();
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l == 1 { 1.0 } else { -1.0 })
            .collect();
        let mut weights = vec![1.0 / n as f64; n];
        self.stumps.clear();

        for _ in 0..self.n_estimators {
            let (stump, weighted_error) = DecisionStump::fit(x, &targets, &weights);
            // Clamp the error away from 0 and 0.5 for numerical stability.
            let err = weighted_error.clamp(1e-10, 0.5 - 1e-10);
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            // Update the sample weights: increase for mistakes.
            let mut total = 0.0;
            for i in 0..n {
                let margin = targets[i] * stump.predict(x.row(i));
                weights[i] *= (-alpha * margin).exp();
                total += weights[i];
            }
            for w in &mut weights {
                *w /= total;
            }
            self.stumps.push((stump, alpha));
            // Perfect weak learner: no point boosting further.
            if weighted_error < 1e-10 {
                break;
            }
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        // Map the margin through a sigmoid so scores look like probabilities
        // (AUROC/AUPRC only care about the ranking).
        sigmoid(self.decision_function(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, auroc};
    use p3gm_privacy::sampling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(61)
    }

    #[test]
    fn learns_a_threshold_task_with_one_stump() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![0, 0, 1, 1];
        let mut model = AdaBoost::new(5);
        model.fit(&x, &y);
        let preds: Vec<usize> = x.row_iter().map(|r| model.predict(r)).collect();
        assert_eq!(accuracy(&preds, &y), 1.0);
        // Perfect stump stops boosting early.
        assert!(model.estimators().len() <= 2);
    }

    #[test]
    fn learns_a_non_linearly_separable_task() {
        // Ring data: positive iff |x| in [1, 2] on either axis — needs
        // several stumps to carve out.
        let mut r = rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..400 {
            let a = sampling::normal(&mut r, 0.0, 1.5);
            let b = sampling::normal(&mut r, 0.0, 1.5);
            let radius = (a * a + b * b).sqrt();
            rows.push(vec![a, b]);
            labels.push(usize::from(radius > 1.0));
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut model = AdaBoost::new(100);
        model.fit(&x, &labels);
        let scores = model.predict_scores(&x);
        assert!(auroc(&scores, &labels) > 0.8);
    }

    #[test]
    fn more_estimators_do_not_hurt_training_fit() {
        let mut r = rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..200 {
            let label = r.gen_bool(0.5) as usize;
            let shift = if label == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                shift + sampling::normal(&mut r, 0.0, 1.2),
                sampling::normal(&mut r, 0.0, 1.0),
            ]);
            labels.push(label);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let fit_auc = |rounds: usize| {
            let mut m = AdaBoost::new(rounds);
            m.fit(&x, &labels);
            auroc(&m.predict_scores(&x), &labels)
        };
        let small = fit_auc(3);
        let large = fit_auc(60);
        assert!(large >= small - 0.02, "small {small}, large {large}");
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let x = Matrix::from_rows(&[vec![0.0], vec![3.0]]).unwrap();
        let y = vec![0, 1];
        let mut model = AdaBoost::new(10);
        model.fit(&x, &y);
        for row in x.row_iter() {
            let s = model.predict_score(row);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "row/label mismatch")]
    fn mismatched_input_panics() {
        let mut model = AdaBoost::default();
        model.fit(&Matrix::zeros(3, 2), &[0, 1]);
    }
}
