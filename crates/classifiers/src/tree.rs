//! Tree weak learners: a gradient-based regression tree (shared by the GBM
//! and XGBoost-style boosters) and a decision stump (used by AdaBoost).
//!
//! The gradient tree is grown greedily.  Every node stores the sums of the
//! per-sample first-order gradients `g_i` and second-order statistics
//! (hessians) `h_i`; a split's quality is the XGBoost gain
//!
//! ```text
//! gain = ½ [ G_L²/(H_L + λ) + G_R²/(H_R + λ) − G²/(H + λ) ]
//! ```
//!
//! and a leaf's value is `−G/(H + λ)`.  With `h_i = 1` and `λ = 0` this is
//! exactly the variance-reduction criterion / mean-residual leaf of a
//! classic least-squares regression tree, which is how the GBM uses it.

use p3gm_linalg::Matrix;

/// Hyper-parameters for growing a [`GradientTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (a depth-0 tree is a single leaf).
    pub max_depth: usize,
    /// Minimum number of samples required in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum total hessian weight required in each child (XGBoost's
    /// `min_child_weight`).
    pub min_child_weight: f64,
    /// L2 regularization λ on leaf values.
    pub lambda: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 3,
            min_samples_leaf: 5,
            min_child_weight: 1e-3,
            lambda: 0.0,
        }
    }
}

/// A node of the regression tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A regression tree fitted to per-sample gradient/hessian pairs.
#[derive(Debug, Clone)]
pub struct GradientTree {
    nodes: Vec<Node>,
    config: TreeConfig,
}

impl GradientTree {
    /// Fits a tree to the given gradients and hessians.
    ///
    /// # Panics
    /// Panics if the lengths of `grads`/`hessians` do not match the number of
    /// rows, or the data is empty.
    pub fn fit(x: &Matrix, grads: &[f64], hessians: &[f64], config: TreeConfig) -> Self {
        assert!(x.rows() > 0, "cannot fit a tree on empty data");
        assert_eq!(x.rows(), grads.len(), "gradient length mismatch");
        assert_eq!(x.rows(), hessians.len(), "hessian length mismatch");
        let mut tree = GradientTree {
            nodes: Vec::new(),
            config,
        };
        let indices: Vec<usize> = (0..x.rows()).collect();
        tree.grow(x, grads, hessians, &indices, 0);
        tree
    }

    /// Predicted value for one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    fn leaf_value(&self, g_sum: f64, h_sum: f64) -> f64 {
        -g_sum / (h_sum + self.config.lambda).max(1e-12)
    }

    /// Recursively grows the subtree over `indices`, returning its node id.
    fn grow(
        &mut self,
        x: &Matrix,
        grads: &[f64],
        hessians: &[f64],
        indices: &[usize],
        depth: usize,
    ) -> usize {
        let g_sum: f64 = indices.iter().map(|&i| grads[i]).sum();
        let h_sum: f64 = indices.iter().map(|&i| hessians[i]).sum();

        let make_leaf = |tree: &mut GradientTree| -> usize {
            tree.nodes.push(Node::Leaf {
                value: tree.leaf_value(g_sum, h_sum),
            });
            tree.nodes.len() - 1
        };

        if depth >= self.config.max_depth || indices.len() < 2 * self.config.min_samples_leaf {
            return make_leaf(self);
        }

        let Some((feature, threshold, gain)) = self.best_split(x, grads, hessians, indices) else {
            return make_leaf(self);
        };
        if gain <= 1e-12 {
            return make_leaf(self);
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| x.get(i, feature) <= threshold);
        if left_idx.len() < self.config.min_samples_leaf
            || right_idx.len() < self.config.min_samples_leaf
        {
            return make_leaf(self);
        }

        // Reserve a slot for this split node, then grow children.
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let left = self.grow(x, grads, hessians, &left_idx, depth + 1);
        let right = self.grow(x, grads, hessians, &right_idx, depth + 1);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    /// Finds the best (feature, threshold) split by the gain criterion.
    fn best_split(
        &self,
        x: &Matrix,
        grads: &[f64],
        hessians: &[f64],
        indices: &[usize],
    ) -> Option<(usize, f64, f64)> {
        let g_total: f64 = indices.iter().map(|&i| grads[i]).sum();
        let h_total: f64 = indices.iter().map(|&i| hessians[i]).sum();
        let lambda = self.config.lambda;
        let parent_score = g_total * g_total / (h_total + lambda).max(1e-12);

        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted = indices.to_vec();
        for feature in 0..x.cols() {
            sorted.sort_by(|&a, &b| {
                x.get(a, feature)
                    .partial_cmp(&x.get(b, feature))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                g_left += grads[i];
                h_left += hessians[i];
                let v = x.get(i, feature);
                let v_next = x.get(sorted[w + 1], feature);
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let n_left = w + 1;
                let n_right = sorted.len() - n_left;
                if n_left < self.config.min_samples_leaf || n_right < self.config.min_samples_leaf {
                    continue;
                }
                let g_right = g_total - g_left;
                let h_right = h_total - h_left;
                if h_left < self.config.min_child_weight || h_right < self.config.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (g_left * g_left / (h_left + lambda).max(1e-12)
                        + g_right * g_right / (h_right + lambda).max(1e-12)
                        - parent_score);
                let threshold = 0.5 * (v + v_next);
                if best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best
    }
}

/// A decision stump: a single threshold on a single feature, predicting
/// `+1`/`−1`, with an orientation bit. The weak learner of AdaBoost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionStump {
    /// The feature index used by the stump.
    pub feature: usize,
    /// The threshold compared against.
    pub threshold: f64,
    /// If `true`, predict +1 when `x[feature] > threshold`; otherwise
    /// predict +1 when `x[feature] <= threshold`.
    pub positive_above: bool,
}

impl DecisionStump {
    /// Fits the stump minimizing the weighted 0/1 error on ±1 targets.
    ///
    /// `targets` must be ±1; `weights` non-negative. Returns the stump and
    /// its weighted error.
    pub fn fit(x: &Matrix, targets: &[f64], weights: &[f64]) -> (Self, f64) {
        assert!(x.rows() > 0, "cannot fit a stump on empty data");
        assert_eq!(x.rows(), targets.len());
        assert_eq!(x.rows(), weights.len());
        let total_weight: f64 = weights.iter().sum();
        let mut best = (
            DecisionStump {
                feature: 0,
                threshold: 0.0,
                positive_above: true,
            },
            f64::INFINITY,
        );
        let mut order: Vec<usize> = (0..x.rows()).collect();
        for feature in 0..x.cols() {
            order.sort_by(|&a, &b| {
                x.get(a, feature)
                    .partial_cmp(&x.get(b, feature))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // error(positive_above) with threshold below the smallest value:
            // everything predicted +1.
            let mut err_above: f64 = order
                .iter()
                .map(|&i| if targets[i] < 0.0 { weights[i] } else { 0.0 })
                .sum();
            // Consider thresholds between consecutive distinct values.
            for w in 0..order.len() {
                let i = order[w];
                // Moving sample i to the "below" side (predicted −1 by the
                // positive_above stump).
                if targets[i] > 0.0 {
                    err_above += weights[i];
                } else {
                    err_above -= weights[i];
                }
                let v = x.get(i, feature);
                let next_differs = w + 1 >= order.len() || x.get(order[w + 1], feature) != v;
                if !next_differs {
                    continue;
                }
                let threshold = if w + 1 < order.len() {
                    0.5 * (v + x.get(order[w + 1], feature))
                } else {
                    v + 1.0
                };
                // positive_above orientation.
                if err_above < best.1 {
                    best = (
                        DecisionStump {
                            feature,
                            threshold,
                            positive_above: true,
                        },
                        err_above,
                    );
                }
                // Opposite orientation has complementary error.
                let err_below = total_weight - err_above;
                if err_below < best.1 {
                    best = (
                        DecisionStump {
                            feature,
                            threshold,
                            positive_above: false,
                        },
                        err_below,
                    );
                }
            }
        }
        best
    }

    /// Predicts ±1 for one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let above = row[self.feature] > self.threshold;
        if above == self.positive_above {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_like() -> (Matrix, Vec<f64>) {
        // Target = 1 iff both coordinates are large: needs a depth-2 tree
        // (a single split cannot isolate the positive quadrant).
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.1],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.9, 0.9],
        ])
        .unwrap();
        let y = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        (x, y)
    }

    #[test]
    fn single_leaf_predicts_mean() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        // Residual-style: g = -(target), h = 1 → leaf = mean(target).
        let targets = [1.0, 2.0, 6.0];
        let grads: Vec<f64> = targets.iter().map(|t| -t).collect();
        let hessians = vec![1.0; 3];
        let tree = GradientTree::fit(
            &x,
            &grads,
            &hessians,
            TreeConfig {
                max_depth: 0,
                ..Default::default()
            },
        );
        assert!((tree.predict(&[0.5]) - 3.0).abs() < 1e-12);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn splits_on_informative_feature() {
        // Feature 0 is informative, feature 1 is constant.
        let x = Matrix::from_rows(&[
            vec![0.0, 5.0],
            vec![0.1, 5.0],
            vec![0.2, 5.0],
            vec![0.9, 5.0],
            vec![1.0, 5.0],
            vec![1.1, 5.0],
        ])
        .unwrap();
        let targets = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let grads: Vec<f64> = targets.iter().map(|t| -t).collect();
        let tree = GradientTree::fit(
            &x,
            &grads,
            &[1.0; 6],
            TreeConfig {
                max_depth: 2,
                min_samples_leaf: 1,
                ..Default::default()
            },
        );
        assert!(tree.predict(&[0.05, 5.0]) < 0.2);
        assert!(tree.predict(&[1.05, 5.0]) > 0.8);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn depth_two_tree_fits_and() {
        let (x, y) = and_like();
        let grads: Vec<f64> = y.iter().map(|t| -t).collect();
        let tree = GradientTree::fit(
            &x,
            &grads,
            &vec![1.0; y.len()],
            TreeConfig {
                max_depth: 2,
                min_samples_leaf: 1,
                ..Default::default()
            },
        );
        for (row, &target) in x.row_iter().zip(y.iter()) {
            let pred = tree.predict(row);
            assert!(
                (pred - target).abs() < 0.3,
                "row {row:?}: predicted {pred}, wanted {target}"
            );
        }
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let grads = vec![-2.0, -2.0];
        let hessians = vec![1.0, 1.0];
        let plain = GradientTree::fit(
            &x,
            &grads,
            &hessians,
            TreeConfig {
                max_depth: 0,
                lambda: 0.0,
                ..Default::default()
            },
        );
        let regularized = GradientTree::fit(
            &x,
            &grads,
            &hessians,
            TreeConfig {
                max_depth: 0,
                lambda: 2.0,
                ..Default::default()
            },
        );
        assert!((plain.predict(&[0.0]) - 2.0).abs() < 1e-12);
        assert!((regularized.predict(&[0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_splits() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let grads = vec![-1.0, -1.0, -1.0, 10.0];
        let tree = GradientTree::fit(
            &x,
            &grads,
            &[1.0; 4],
            TreeConfig {
                max_depth: 3,
                min_samples_leaf: 3,
                ..Default::default()
            },
        );
        // 4 samples cannot be split into two children of >= 3 samples.
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn mismatched_gradients_panic() {
        let x = Matrix::zeros(3, 1);
        let _ = GradientTree::fit(&x, &[0.0], &[1.0, 1.0, 1.0], TreeConfig::default());
    }

    #[test]
    fn stump_finds_best_threshold_and_orientation() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let targets = [-1.0, -1.0, 1.0, 1.0];
        let weights = [0.25; 4];
        let (stump, err) = DecisionStump::fit(&x, &targets, &weights);
        assert_eq!(stump.feature, 0);
        assert!(stump.threshold > 1.0 && stump.threshold < 2.0);
        assert!(stump.positive_above);
        assert!(err < 1e-12);
        assert_eq!(stump.predict(&[0.5]), -1.0);
        assert_eq!(stump.predict(&[2.5]), 1.0);

        // Inverted targets flip the orientation.
        let inverted = [1.0, 1.0, -1.0, -1.0];
        let (stump, err) = DecisionStump::fit(&x, &inverted, &weights);
        assert!(!stump.positive_above);
        assert!(err < 1e-12);
    }

    #[test]
    fn stump_respects_weights() {
        // Two mislabeled points, but with negligible weight: the stump should
        // still pick the dominant threshold.
        let x =
            Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![1.5]]).unwrap();
        let targets = [-1.0, -1.0, 1.0, 1.0, 1.0];
        let weights = [1.0, 1.0, 1.0, 1.0, 1e-9];
        let (stump, err) = DecisionStump::fit(&x, &targets, &weights);
        assert!(stump.threshold > 1.0);
        assert!(err < 1e-6);
    }
}
