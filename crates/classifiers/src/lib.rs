//! # p3gm-classifiers
//!
//! Downstream classifiers and evaluation metrics for the P3GM reproduction.
//!
//! The paper measures the utility of synthetic data by training classifiers
//! on it and evaluating them on *real* held-out test data (the
//! train-on-synthetic / test-on-real protocol of Jordon et al.).  For
//! tabular data it uses four classifiers — logistic regression, AdaBoost,
//! gradient boosting and XGBoost — scored by AUROC and AUPRC; for images it
//! trains a small CNN scored by accuracy.  This crate reimplements all of
//! them:
//!
//! * [`metrics`] — accuracy, AUROC, AUPRC.
//! * [`logistic`] — binary logistic regression trained with full-batch
//!   gradient descent.
//! * [`tree`] — depth-limited regression trees (the weak learner shared by
//!   the boosting models) and decision stumps.
//! * [`adaboost`] — AdaBoost over decision stumps.
//! * [`gbm`] — gradient boosting with regression trees on the logistic
//!   loss (scikit-learn's `GradientBoostingClassifier` analogue).
//! * [`xgboost`] — second-order (Newton) boosting with L2 regularization on
//!   leaf weights (the XGBoost objective).
//! * [`mlp_classifier`] — a multi-class MLP softmax classifier used for the
//!   image experiments (the Conv2d variant lives in `p3gm-nn::conv`).
//! * [`suite`] — the paper's four-classifier evaluation harness producing
//!   the AUROC/AUPRC rows of Tables V and VI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaboost;
pub mod gbm;
pub mod logistic;
pub mod metrics;
pub mod mlp_classifier;
pub mod suite;
pub mod tree;
pub mod xgboost;

pub use adaboost::AdaBoost;
pub use gbm::GradientBoosting;
pub use logistic::LogisticRegression;
pub use metrics::{accuracy, auprc, auroc};
pub use mlp_classifier::MlpClassifier;
pub use suite::{evaluate_binary_suite, BinaryScores, ClassifierKind, SuiteReport};
pub use xgboost::XgBoost;

use p3gm_linalg::Matrix;

/// Common interface of the binary classifiers used in Tables V and VI.
///
/// Labels are 0/1; `predict_score` returns a real-valued score that is
/// monotone in the predicted probability of the positive class (AUROC/AUPRC
/// only need the ranking).
pub trait BinaryClassifier {
    /// Fits the classifier on rows of `x` with 0/1 `labels`.
    fn fit(&mut self, x: &Matrix, labels: &[usize]);

    /// Returns a score for the positive class for one row.
    fn predict_score(&self, x: &[f64]) -> f64;

    /// Predicts the hard label for one row (score threshold 0.5 for
    /// probability-like scores, 0.0 for margin-like scores — implementors
    /// override when needed).
    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.predict_score(x) >= 0.5)
    }

    /// Scores every row of a matrix.
    fn predict_scores(&self, x: &Matrix) -> Vec<f64> {
        x.row_iter().map(|row| self.predict_score(row)).collect()
    }
}
