//! Binary logistic regression trained by full-batch gradient descent with
//! L2 regularization — the `LogisticRegression` row of Tables V and VI.

use crate::BinaryClassifier;
use p3gm_linalg::{vector, Matrix};
use p3gm_nn::activation::sigmoid;

/// Binary logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate of the gradient-descent fit.
    pub learning_rate: f64,
    /// Number of full-batch gradient steps.
    pub iterations: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.1,
            iterations: 300,
            l2: 1e-4,
        }
    }
}

impl LogisticRegression {
    /// Creates a model with explicit hyper-parameters.
    pub fn new(learning_rate: f64, iterations: usize, l2: f64) -> Self {
        LogisticRegression {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate,
            iterations,
            l2,
        }
    }

    /// The fitted weight vector (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Decision-function value (logit) for one row.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        vector::dot(&self.weights, x) + self.bias
    }
}

impl BinaryClassifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, labels: &[usize]) {
        assert_eq!(x.rows(), labels.len(), "row/label mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let n = x.rows() as f64;
        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        // Feature-wise scaling improves conditioning; fold into the weights.
        for _ in 0..self.iterations {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (row, &label) in x.row_iter().zip(labels.iter()) {
                let p = sigmoid(self.decision_function(row));
                let err = p - label as f64;
                vector::axpy(err, row, &mut grad_w);
                grad_b += err;
            }
            for (g, w) in grad_w.iter_mut().zip(self.weights.iter()) {
                *g = *g / n + self.l2 * w;
            }
            grad_b /= n;
            vector::axpy(-self.learning_rate, &grad_w, &mut self.weights);
            self.bias -= self.learning_rate * grad_b;
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision_function(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, auroc};
    use p3gm_privacy::sampling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(51)
    }

    fn linearly_separable(rng: &mut StdRng, n: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.5) as usize;
            let shift = if label == 1 { 1.5 } else { -1.5 };
            rows.push(vec![
                shift + sampling::normal(rng, 0.0, 1.0),
                sampling::normal(rng, 0.0, 1.0),
            ]);
            labels.push(label);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let mut r = rng();
        let (x, y) = linearly_separable(&mut r, 400);
        let mut model = LogisticRegression::default();
        model.fit(&x, &y);
        let preds: Vec<usize> = x.row_iter().map(|row| model.predict(row)).collect();
        assert!(accuracy(&preds, &y) > 0.85);
        let scores = model.predict_scores(&x);
        assert!(auroc(&scores, &y) > 0.9);
        // The informative feature gets the dominant weight.
        assert!(model.weights()[0].abs() > model.weights()[1].abs());
    }

    #[test]
    fn scores_are_probabilities() {
        let mut r = rng();
        let (x, y) = linearly_separable(&mut r, 200);
        let mut model = LogisticRegression::default();
        model.fit(&x, &y);
        for row in x.row_iter() {
            let p = model.predict_score(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn regularization_shrinks_weights() {
        let mut r = rng();
        let (x, y) = linearly_separable(&mut r, 300);
        let mut loose = LogisticRegression::new(0.1, 300, 0.0);
        let mut tight = LogisticRegression::new(0.1, 300, 1.0);
        loose.fit(&x, &y);
        tight.fit(&x, &y);
        assert!(vector::norm2(tight.weights()) < vector::norm2(loose.weights()));
    }

    #[test]
    fn predicts_majority_when_uninformative() {
        // All features zero: model should converge to the prior through the
        // bias and produce scores near the positive fraction.
        let x = Matrix::zeros(100, 3);
        let y: Vec<usize> = (0..100).map(|i| usize::from(i < 30)).collect();
        let mut model = LogisticRegression::new(0.5, 500, 0.0);
        model.fit(&x, &y);
        let p = model.predict_score(&[0.0, 0.0, 0.0]);
        assert!((p - 0.3).abs() < 0.05, "score {p}");
    }

    #[test]
    #[should_panic(expected = "row/label mismatch")]
    fn mismatched_input_panics() {
        let mut model = LogisticRegression::default();
        model.fit(&Matrix::zeros(3, 2), &[0, 1]);
    }
}
