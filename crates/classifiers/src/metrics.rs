//! Evaluation metrics: accuracy, AUROC and AUPRC.
//!
//! AUROC is computed by the Mann–Whitney U statistic (rank-based, handles
//! ties by midranks); AUPRC by the step-wise interpolation of the
//! precision-recall curve (the same convention as scikit-learn's
//! `average_precision_score`, which is what the paper's numbers are based
//! on).

/// Fraction of predictions equal to the true label.
///
/// Returns 0.0 for empty input.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Area under the ROC curve for binary labels (1 = positive).
///
/// Uses the rank-statistic formulation with midranks for ties.  Returns 0.5
/// when one of the classes is absent (no ranking information).
pub fn auroc(scores: &[f64], labels: &[usize]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&l| l == 1).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort indices by score ascending and assign midranks.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Midrank for the tie group [i, j] (1-based ranks).
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels.iter())
        .filter(|(_, &l)| l == 1)
        .map(|(&r, _)| r)
        .sum();
    let u = rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Area under the precision-recall curve (average precision) for binary
/// labels (1 = positive).
///
/// Computed as `Σ_k (R_k − R_{k−1}) · P_k` over the ranked predictions.
/// Returns the positive prevalence when there are no positives/negatives to
/// rank (the metric's natural baseline).
pub fn auprc(scores: &[f64], labels: &[usize]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&l| l == 1).count();
    if labels.is_empty() {
        return 0.0;
    }
    if n_pos == 0 {
        return 0.0;
    }
    if n_pos == labels.len() {
        return 1.0;
    }
    // Sort by score descending.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut prev_recall = 0.0;
    let mut ap = 0.0;
    let mut i = 0;
    while i < order.len() {
        // Process tie groups together so the curve is well defined.
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        for &idx in &order[i..=j] {
            if labels[idx] == 1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
        }
        let recall = tp / n_pos as f64;
        let precision = tp / (tp + fp);
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
        i = j + 1;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn auroc_perfect_and_inverted() {
        let labels = [0, 0, 1, 1];
        assert_eq!(auroc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0);
        assert_eq!(auroc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0);
    }

    #[test]
    fn auroc_random_scores_is_half() {
        // Constant scores → all ties → 0.5.
        assert_eq!(auroc(&[0.5, 0.5, 0.5, 0.5], &[0, 1, 0, 1]), 0.5);
        // Single-class input → 0.5 by convention.
        assert_eq!(auroc(&[0.1, 0.9], &[1, 1]), 0.5);
    }

    #[test]
    fn auroc_known_value_with_one_error() {
        // Scores rank one negative above one positive:
        // pairs: (pos=0.7 vs neg 0.2, 0.8) → 1 + 0 ; (pos=0.9 vs both) → 2.
        // AUROC = 3/4.
        let labels = [0, 1, 0, 1];
        let scores = [0.2, 0.7, 0.8, 0.9];
        assert!((auroc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auroc_is_threshold_free() {
        // Monotone transformation of scores leaves AUROC unchanged.
        let labels = [0, 1, 0, 1, 1, 0];
        let scores = [0.1, 0.4, 0.35, 0.8, 0.65, 0.2];
        let transformed: Vec<f64> = scores.iter().map(|s| s * 100.0 - 3.0).collect();
        assert!((auroc(&scores, &labels) - auroc(&transformed, &labels)).abs() < 1e-12);
    }

    #[test]
    fn auprc_perfect_ranking_is_one() {
        let labels = [0, 0, 1, 1];
        assert!((auprc(&[0.1, 0.2, 0.8, 0.9], &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auprc_worst_ranking_for_balanced_data() {
        // All negatives ranked above positives: AP = Σ over positives of
        // precision at their positions = (1/3 + 2/4)/2 = 0.4167.
        let labels = [1, 1, 0, 0];
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert!((auprc(&scores, &labels) - (1.0 / 3.0 + 2.0 / 4.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn auprc_constant_scores_equals_prevalence() {
        // One tie group containing everything → AP = precision = prevalence.
        let labels = [1, 0, 0, 0, 0];
        assert!((auprc(&[0.3; 5], &labels) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn auprc_degenerate_inputs() {
        assert_eq!(auprc(&[], &[]), 0.0);
        assert_eq!(auprc(&[0.5, 0.5], &[0, 0]), 0.0);
        assert_eq!(auprc(&[0.5, 0.5], &[1, 1]), 1.0);
    }

    #[test]
    fn auprc_is_sensitive_to_imbalance() {
        // Same ranking quality, more negatives → lower AUPRC (unlike AUROC).
        let balanced_labels = [1, 0, 1, 0];
        let balanced_scores = [0.9, 0.8, 0.7, 0.1];
        let imbalanced_labels = [1, 0, 0, 0, 0, 0, 1, 0];
        let imbalanced_scores = [0.9, 0.85, 0.84, 0.83, 0.82, 0.81, 0.7, 0.1];
        let b = auprc(&balanced_scores, &balanced_labels);
        let i = auprc(&imbalanced_scores, &imbalanced_labels);
        assert!(b > i);
        // AUROC of both rankings is similar in spirit (sanity check only).
        assert!(auroc(&balanced_scores, &balanced_labels) > 0.5);
    }
}
