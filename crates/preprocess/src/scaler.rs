//! Feature scaling.
//!
//! The P3GM pipeline scales tabular features into `[0, 1]` (so the decoder's
//! Bernoulli likelihood applies and DP-PCA's unit-ball assumption is easy to
//! satisfy) and standardizes features for the downstream classifiers.

use crate::{PreprocessError, Result};
use p3gm_linalg::{stats, Matrix};

/// Scales every feature into `[0, 1]` via `(x − min) / (max − min)`.
///
/// Constant features map to 0.5. `inverse_transform` restores the original
/// units.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on the rows of `data`.
    pub fn fit(data: &Matrix) -> Result<Self> {
        let (mins, maxs) = stats::column_min_max(data)
            .map_err(|e| PreprocessError::InvalidData { msg: e.to_string() })?;
        Ok(MinMaxScaler { mins, maxs })
    }

    /// Per-feature minima observed at fit time.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-feature maxima observed at fit time.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Transforms one row into `[0, 1]` (values outside the fitted range are
    /// clamped).
    pub fn transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.check_width(x.len())?;
        Ok(x.iter()
            .zip(self.mins.iter().zip(self.maxs.iter()))
            .map(|(&v, (&lo, &hi))| {
                if hi > lo {
                    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else {
                    0.5
                }
            })
            .collect())
    }

    /// Transforms every row of a matrix (parallel over row chunks).
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        self.check_width(data.cols())?;
        Ok(map_rows(data, |r, out| {
            for ((o, &v), (&lo, &hi)) in out
                .iter_mut()
                .zip(r.iter())
                .zip(self.mins.iter().zip(self.maxs.iter()))
            {
                *o = if hi > lo {
                    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else {
                    0.5
                };
            }
        }))
    }

    /// Maps a `[0, 1]` row back to the original units.
    pub fn inverse_transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.check_width(x.len())?;
        Ok(x.iter()
            .zip(self.mins.iter().zip(self.maxs.iter()))
            .map(|(&v, (&lo, &hi))| {
                if hi > lo {
                    lo + v.clamp(0.0, 1.0) * (hi - lo)
                } else {
                    lo
                }
            })
            .collect())
    }

    /// Inverse-transforms every row of a matrix (parallel over row chunks).
    pub fn inverse_transform(&self, data: &Matrix) -> Result<Matrix> {
        self.check_width(data.cols())?;
        Ok(map_rows(data, |r, out| {
            for ((o, &v), (&lo, &hi)) in out
                .iter_mut()
                .zip(r.iter())
                .zip(self.mins.iter().zip(self.maxs.iter()))
            {
                *o = if hi > lo {
                    lo + v.clamp(0.0, 1.0) * (hi - lo)
                } else {
                    lo
                };
            }
        }))
    }

    fn check_width(&self, len: usize) -> Result<()> {
        if len != self.mins.len() {
            return Err(PreprocessError::InvalidData {
                msg: format!("expected {} features, got {}", self.mins.len(), len),
            });
        }
        Ok(())
    }

    /// Serializes the fitted scaler into a framed `p3gm-store` buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::MIN_MAX_SCALER);
        enc.f64_slice(&self.mins).f64_slice(&self.maxs);
        enc.finish()
    }

    /// Deserializes a scaler from a buffer produced by
    /// [`MinMaxScaler::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<MinMaxScaler> {
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::MIN_MAX_SCALER)?;
        let mins = dec.f64_vec()?;
        let maxs = dec.f64_vec()?;
        dec.finish()?;
        if mins.len() != maxs.len() || mins.is_empty() {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!(
                    "min/max vectors of lengths {}/{} do not form a scaler",
                    mins.len(),
                    maxs.len()
                ),
            });
        }
        if mins.iter().chain(maxs.iter()).any(|v| !v.is_finite()) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: "scaler bounds must be finite".to_string(),
            });
        }
        Ok(MinMaxScaler { mins, maxs })
    }
}

/// Standardizes every feature to zero mean and unit variance.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on the rows of `data`. Features with zero variance
    /// get a standard deviation of 1 (so they map to 0).
    pub fn fit(data: &Matrix) -> Result<Self> {
        let means = stats::column_means(data)
            .map_err(|e| PreprocessError::InvalidData { msg: e.to_string() })?;
        let vars = stats::column_variances(data)
            .map_err(|e| PreprocessError::InvalidData { msg: e.to_string() })?;
        let stds = vars
            .iter()
            .map(|&v| if v > 0.0 { v.sqrt() } else { 1.0 })
            .collect();
        Ok(StandardScaler { means, stds })
    }

    /// Per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardizes one row.
    pub fn transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.means.len() {
            return Err(PreprocessError::InvalidData {
                msg: format!("expected {} features, got {}", self.means.len(), x.len()),
            });
        }
        Ok(x.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect())
    }

    /// Standardizes every row of a matrix (parallel over row chunks).
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.means.len() {
            return Err(PreprocessError::InvalidData {
                msg: format!(
                    "expected {} features, got {}",
                    self.means.len(),
                    data.cols()
                ),
            });
        }
        Ok(map_rows(data, |r, out| {
            for ((o, &v), (&m, &s)) in out
                .iter_mut()
                .zip(r.iter())
                .zip(self.means.iter().zip(self.stds.iter()))
            {
                *o = (v - m) / s;
            }
        }))
    }

    /// Restores the original units of one row.
    pub fn inverse_transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.means.len() {
            return Err(PreprocessError::InvalidData {
                msg: format!("expected {} features, got {}", self.means.len(), x.len()),
            });
        }
        Ok(x.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(&v, (&m, &s))| v * s + m)
            .collect())
    }

    /// Serializes the fitted scaler into a framed `p3gm-store` buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::STANDARD_SCALER);
        enc.f64_slice(&self.means).f64_slice(&self.stds);
        enc.finish()
    }

    /// Deserializes a scaler from a buffer produced by
    /// [`StandardScaler::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<StandardScaler> {
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::STANDARD_SCALER)?;
        let means = dec.f64_vec()?;
        let stds = dec.f64_vec()?;
        dec.finish()?;
        if means.len() != stds.len() || means.is_empty() {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!(
                    "mean/std vectors of lengths {}/{} do not form a scaler",
                    means.len(),
                    stds.len()
                ),
            });
        }
        if stds.iter().any(|&s| !s.is_finite() || s <= 0.0) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: "standard deviations must be positive and finite".to_string(),
            });
        }
        if means.iter().any(|v| !v.is_finite()) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: "means must be finite".to_string(),
            });
        }
        Ok(StandardScaler { means, stds })
    }
}

/// Applies an infallible per-row kernel `f(input_row, output_row)` to every
/// row, filling a fresh output matrix on parallel row chunks (callers
/// validate widths up front). Rows are independent, so the result is
/// bit-identical for every thread count.
fn map_rows(data: &Matrix, f: impl Fn(&[f64], &mut [f64]) + Sync) -> Matrix {
    let cols = data.cols();
    let mut out = Matrix::zeros(data.rows(), cols);
    let rows_per_chunk = p3gm_parallel::default_chunk_len(data.rows());
    p3gm_parallel::par_chunks_mut(
        out.as_mut_slice(),
        rows_per_chunk * cols.max(1),
        |chunk_index, out_chunk| {
            let base = chunk_index * rows_per_chunk;
            for (local, out_row) in out_chunk.chunks_mut(cols.max(1)).enumerate() {
                f(data.row(base + local), out_row);
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 10.0, 5.0],
            vec![2.0, 20.0, 5.0],
            vec![4.0, 40.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let scaler = MinMaxScaler::fit(&data()).unwrap();
        let t = scaler.transform(&data()).unwrap();
        let (mins, maxs) = stats_minmax(&t);
        assert!(mins.iter().all(|&m| m >= 0.0));
        assert!(maxs.iter().all(|&m| m <= 1.0));
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(2, 0), 1.0);
        // Constant feature maps to 0.5.
        assert_eq!(t.get(1, 2), 0.5);
        assert_eq!(scaler.mins()[1], 10.0);
        assert_eq!(scaler.maxs()[1], 40.0);
    }

    #[test]
    fn minmax_roundtrip() {
        let scaler = MinMaxScaler::fit(&data()).unwrap();
        let t = scaler.transform(&data()).unwrap();
        let back = scaler.inverse_transform(&t).unwrap();
        for (orig, rec) in data().row_iter().zip(back.row_iter()) {
            // Constant columns lose information (come back as the min).
            assert!((orig[0] - rec[0]).abs() < 1e-12);
            assert!((orig[1] - rec[1]).abs() < 1e-12);
            assert!((rec[2] - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn minmax_clamps_out_of_range() {
        let scaler = MinMaxScaler::fit(&data()).unwrap();
        let t = scaler.transform_row(&[-10.0, 100.0, 5.0]).unwrap();
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], 1.0);
        assert!(scaler.transform_row(&[1.0]).is_err());
        assert!(scaler.inverse_transform_row(&[1.0]).is_err());
    }

    #[test]
    fn standard_scaler_zero_mean_unit_variance() {
        let scaler = StandardScaler::fit(&data()).unwrap();
        let t = scaler.transform(&data()).unwrap();
        let means = stats::column_means(&t).unwrap();
        let vars = stats::column_variances(&t).unwrap();
        assert!(means[0].abs() < 1e-12);
        assert!(means[1].abs() < 1e-12);
        assert!((vars[0] - 1.0).abs() < 1e-9);
        assert!((vars[1] - 1.0).abs() < 1e-9);
        // Constant feature maps to 0 with std 1.
        assert_eq!(t.get(0, 2), 0.0);
        assert_eq!(scaler.stds()[2], 1.0);
        assert_eq!(scaler.means()[2], 5.0);
    }

    #[test]
    fn standard_scaler_roundtrip() {
        let scaler = StandardScaler::fit(&data()).unwrap();
        let row = [3.0, 25.0, 5.0];
        let t = scaler.transform_row(&row).unwrap();
        let back = scaler.inverse_transform_row(&t).unwrap();
        for (a, b) in row.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(scaler.transform_row(&[1.0]).is_err());
        assert!(scaler.inverse_transform_row(&[1.0]).is_err());
    }

    #[test]
    fn byte_round_trips_are_bit_exact() {
        let minmax = MinMaxScaler::fit(&data()).unwrap();
        let back = MinMaxScaler::from_bytes(&minmax.to_bytes()).unwrap();
        assert_eq!(back.mins(), minmax.mins());
        assert_eq!(back.maxs(), minmax.maxs());

        let standard = StandardScaler::fit(&data()).unwrap();
        let back = StandardScaler::from_bytes(&standard.to_bytes()).unwrap();
        assert_eq!(back.means(), standard.means());
        assert_eq!(back.stds(), standard.stds());

        // Truncation and cross-type confusion are typed errors.
        let bytes = minmax.to_bytes();
        assert!(MinMaxScaler::from_bytes(&bytes[..10]).is_err());
        assert!(matches!(
            StandardScaler::from_bytes(&bytes),
            Err(p3gm_store::StoreError::WrongTag { .. })
        ));
    }

    #[test]
    fn fitting_empty_data_fails() {
        assert!(MinMaxScaler::fit(&Matrix::zeros(0, 2)).is_err());
        assert!(StandardScaler::fit(&Matrix::zeros(0, 2)).is_err());
    }

    fn stats_minmax(m: &Matrix) -> (Vec<f64>, Vec<f64>) {
        stats::column_min_max(m).unwrap()
    }

    use p3gm_linalg::stats;
}
