//! Principal component analysis, exact and differentially private.
//!
//! P3GM uses PCA as the dimensionality reduction `f` of its Encoding Phase
//! and fixes the encoder mean to `µ_φ(x) = f(x)` (paper Eq. (6)).  The
//! private variant perturbs the second-moment matrix with a Wishart noise
//! matrix whose scale matrix has `d` equal eigenvalues `3/(2nε)` (Jiang et
//! al.; paper §II-D), which gives a pure (ε_p, 0)-DP release of the
//! projection basis.  Following the paper's footnote 2, the column means
//! used for centring are treated as publicly available.

use crate::{PreprocessError, Result};
use p3gm_linalg::{stats, Matrix, SymmetricEigen};
use p3gm_privacy::mechanisms::wishart_noise;
use rand::Rng;

/// A fitted PCA transform: `z = Vᵀ (x − µ)` with `V` the `d x d'` matrix of
/// leading eigenvectors.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `d x d'` matrix whose columns are the principal directions.
    components: Matrix,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits an exact PCA with `n_components` output dimensions.
    pub fn fit(data: &Matrix, n_components: usize) -> Result<Self> {
        let (mean, cov) = mean_and_covariance(data, n_components)?;
        Self::from_covariance(&cov, mean, n_components)
    }

    /// Builds a PCA from an already-computed covariance matrix and mean.
    pub fn from_covariance(cov: &Matrix, mean: Vec<f64>, n_components: usize) -> Result<Self> {
        let eigen = SymmetricEigen::new(cov).map_err(|e| PreprocessError::Numerical {
            msg: format!("eigen-decomposition failed: {e}"),
        })?;
        let components = eigen.top_k_eigenvectors(n_components);
        Ok(Pca {
            mean,
            components,
            eigenvalues: eigen.eigenvalues,
        })
    }

    /// The per-feature mean subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The projection matrix (columns are principal directions).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// All eigenvalues of the (possibly noisy) covariance, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Number of output dimensions `d'`.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Input dimensionality `d`.
    pub fn input_dim(&self) -> usize {
        self.components.rows()
    }

    /// Fraction of spectrum mass captured by the kept components.
    pub fn explained_variance_ratio(&self) -> f64 {
        let total: f64 = self.eigenvalues.iter().map(|l| l.abs()).sum();
        if total == 0.0 {
            return 1.0;
        }
        self.eigenvalues[..self.n_components()]
            .iter()
            .map(|l| l.abs())
            .sum::<f64>()
            / total
    }

    /// Projects one row: `z = Vᵀ (x − µ)`.
    pub fn transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.input_dim() {
            return Err(PreprocessError::InvalidData {
                msg: format!("expected {} features, got {}", self.input_dim(), x.len()),
            });
        }
        let centered: Vec<f64> = x.iter().zip(self.mean.iter()).map(|(a, m)| a - m).collect();
        self.components
            .vecmat(&centered)
            .map_err(|e| PreprocessError::Numerical { msg: e.to_string() })
    }

    /// Projects a whole batch: `Z = (X − µ) V`, computed as one centred
    /// matrix product (blocked and parallelized in `p3gm-linalg`).
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.input_dim() {
            return Err(PreprocessError::InvalidData {
                msg: format!(
                    "expected {} features, got {}",
                    self.input_dim(),
                    data.cols()
                ),
            });
        }
        let centered = stats::center(data, &self.mean)
            .map_err(|e| PreprocessError::Numerical { msg: e.to_string() })?;
        centered
            .matmul(&self.components)
            .map_err(|e| PreprocessError::Numerical { msg: e.to_string() })
    }

    /// Reconstructs a row from its projection: `x ≈ V z + µ`.
    pub fn inverse_transform_row(&self, z: &[f64]) -> Result<Vec<f64>> {
        if z.len() != self.n_components() {
            return Err(PreprocessError::InvalidData {
                msg: format!(
                    "expected {} components, got {}",
                    self.n_components(),
                    z.len()
                ),
            });
        }
        let mut x = self
            .components
            .matvec(z)
            .map_err(|e| PreprocessError::Numerical { msg: e.to_string() })?;
        for (xi, m) in x.iter_mut().zip(self.mean.iter()) {
            *xi += m;
        }
        Ok(x)
    }

    /// Reconstructs a whole batch: `X̂ = Z Vᵀ + µ`, as one matrix product.
    pub fn inverse_transform(&self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.n_components() {
            return Err(PreprocessError::InvalidData {
                msg: format!(
                    "expected {} components, got {}",
                    self.n_components(),
                    data.cols()
                ),
            });
        }
        // `Z Vᵀ` via the transposed-product kernel: `components` is `d x d'`
        // with the latent axis last, so no transpose is materialized.
        let mut out = data
            .matmul_transposed(&self.components)
            .map_err(|e| PreprocessError::Numerical { msg: e.to_string() })?;
        for i in 0..out.rows() {
            p3gm_linalg::vector::axpy(1.0, &self.mean, out.row_mut(i));
        }
        Ok(out)
    }

    /// Serializes the fitted transform into a framed `p3gm-store` buffer
    /// (mean, component matrix, eigenvalue spectrum; bit-exact round trip).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::PCA);
        enc.f64_slice(&self.mean);
        enc.nested(&self.components.to_bytes());
        enc.f64_slice(&self.eigenvalues);
        enc.finish()
    }

    /// Deserializes a transform from a buffer produced by [`Pca::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Pca> {
        use p3gm_store::StoreError;
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::PCA)?;
        let mean = dec.f64_vec()?;
        let components = Matrix::from_bytes(dec.nested()?)?;
        let eigenvalues = dec.f64_vec()?;
        dec.finish()?;
        if components.cols() == 0 || mean.len() != components.rows() {
            return Err(StoreError::Invalid {
                msg: format!(
                    "mean of length {} inconsistent with {}x{} component matrix",
                    mean.len(),
                    components.rows(),
                    components.cols()
                ),
            });
        }
        if eigenvalues.len() < components.cols() {
            return Err(StoreError::Invalid {
                msg: format!(
                    "{} eigenvalues cannot cover {} components",
                    eigenvalues.len(),
                    components.cols()
                ),
            });
        }
        if mean
            .iter()
            .chain(components.as_slice().iter())
            .chain(eigenvalues.iter())
            .any(|v| !v.is_finite())
        {
            return Err(StoreError::Invalid {
                msg: "PCA mean, components and eigenvalues must be finite".to_string(),
            });
        }
        Ok(Pca {
            mean,
            components,
            eigenvalues,
        })
    }

    /// Mean squared reconstruction error over a dataset — the quantity the
    /// Encoding Phase objective (paper Eq. (5)) minimizes. Computed on the
    /// batched project/reconstruct path with a deterministic chunked sum.
    pub fn reconstruction_error(&self, data: &Matrix) -> Result<f64> {
        let z = self.transform(data)?;
        let back = self.inverse_transform(&z)?;
        let total = p3gm_parallel::par_map_reduce(
            data.rows(),
            p3gm_parallel::default_chunk_len(data.rows()),
            |range| {
                range
                    .map(|i| p3gm_linalg::vector::squared_distance(data.row(i), back.row(i)))
                    .sum::<f64>()
            },
            |a, b| a + b,
        )
        .unwrap_or(0.0);
        Ok(total / data.rows().max(1) as f64)
    }
}

/// Differentially private PCA via the Wishart mechanism.
///
/// The covariance (second-moment) matrix is computed from rows that are
/// assumed to lie in the unit L2 ball (callers should scale the data first;
/// the sensitivity analysis of the Wishart mechanism requires it), then a
/// Wishart noise matrix `W_d(d+1, C)` with `C = 3/(2nε) I` is added before
/// the eigen-decomposition. The release satisfies (ε, 0)-DP, so the
/// projection and everything derived from it are post-processing.
#[derive(Debug, Clone)]
pub struct DpPca {
    inner: Pca,
    epsilon: f64,
}

impl DpPca {
    /// Fits a DP-PCA with the given output dimensionality and budget ε.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        n_components: usize,
        epsilon: f64,
    ) -> Result<Self> {
        if epsilon <= 0.0 {
            return Err(PreprocessError::InvalidParameter {
                msg: format!("epsilon must be positive, got {epsilon}"),
            });
        }
        let (mean, cov) = mean_and_covariance(data, n_components)?;
        let noise = wishart_noise(rng, data.cols(), data.rows(), epsilon).map_err(|e| {
            PreprocessError::Numerical {
                msg: format!("Wishart noise sampling failed: {e}"),
            }
        })?;
        let noisy = cov
            .add(&noise)
            .map_err(|e| PreprocessError::Numerical { msg: e.to_string() })?;
        let inner = Pca::from_covariance(&noisy, mean, n_components)?;
        Ok(DpPca { inner, epsilon })
    }

    /// The privacy budget consumed by the fit.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Access to the fitted (noisy) PCA transform.
    pub fn pca(&self) -> &Pca {
        &self.inner
    }

    /// Projects one row.
    pub fn transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.inner.transform_row(x)
    }

    /// Projects every row of a data matrix.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        self.inner.transform(data)
    }

    /// Reconstructs a row from its projection.
    pub fn inverse_transform_row(&self, z: &[f64]) -> Result<Vec<f64>> {
        self.inner.inverse_transform_row(z)
    }

    /// Number of output dimensions.
    pub fn n_components(&self) -> usize {
        self.inner.n_components()
    }

    /// Serializes the fitted DP-PCA into a framed `p3gm-store` buffer
    /// (the inner transform plus the consumed budget ε).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::DP_PCA);
        enc.nested(&self.inner.to_bytes());
        enc.f64(self.epsilon);
        enc.finish()
    }

    /// Deserializes a DP-PCA from a buffer produced by [`DpPca::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<DpPca> {
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::DP_PCA)?;
        let inner = Pca::from_bytes(dec.nested()?)?;
        let epsilon = dec.f64()?;
        dec.finish()?;
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(p3gm_store::StoreError::Invalid {
                msg: format!("DP-PCA epsilon must be positive and finite, got {epsilon}"),
            });
        }
        Ok(DpPca { inner, epsilon })
    }
}

fn mean_and_covariance(data: &Matrix, n_components: usize) -> Result<(Vec<f64>, Matrix)> {
    if data.rows() == 0 || data.cols() == 0 {
        return Err(PreprocessError::InvalidData {
            msg: "empty data".to_string(),
        });
    }
    if n_components == 0 || n_components > data.cols() {
        return Err(PreprocessError::InvalidParameter {
            msg: format!(
                "n_components must be in 1..={}, got {}",
                data.cols(),
                n_components
            ),
        });
    }
    let mean =
        stats::column_means(data).map_err(|e| PreprocessError::Numerical { msg: e.to_string() })?;
    let cov = stats::covariance_matrix(data, Some(&mean))
        .map_err(|e| PreprocessError::Numerical { msg: e.to_string() })?;
    Ok((mean, cov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3gm_privacy::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(37)
    }

    /// Data lying mostly along the (1, 1, 0) direction in 3-D.
    fn line_data(rng: &mut StdRng, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let t = sampling::normal(rng, 0.0, 2.0);
                vec![
                    t + sampling::normal(rng, 0.0, 0.05),
                    t + sampling::normal(rng, 0.0, 0.05),
                    sampling::normal(rng, 0.0, 0.05),
                ]
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let mut r = rng();
        let data = line_data(&mut r, 500);
        let pca = Pca::fit(&data, 1).unwrap();
        let v = pca.components().col(0);
        // Should be ±(1,1,0)/sqrt(2).
        assert!((v[0].abs() - 1.0 / 2.0_f64.sqrt()).abs() < 0.05, "{v:?}");
        assert!((v[1].abs() - 1.0 / 2.0_f64.sqrt()).abs() < 0.05, "{v:?}");
        assert!(v[2].abs() < 0.1, "{v:?}");
        assert!(pca.explained_variance_ratio() > 0.95);
        assert_eq!(pca.n_components(), 1);
        assert_eq!(pca.input_dim(), 3);
    }

    #[test]
    fn full_rank_projection_reconstructs_exactly() {
        let mut r = rng();
        let data = line_data(&mut r, 100);
        let pca = Pca::fit(&data, 3).unwrap();
        let err = pca.reconstruction_error(&data).unwrap();
        assert!(err < 1e-18, "reconstruction error {err}");
    }

    #[test]
    fn reconstruction_error_decreases_with_more_components() {
        let mut r = rng();
        let data = line_data(&mut r, 300);
        let e1 = Pca::fit(&data, 1)
            .unwrap()
            .reconstruction_error(&data)
            .unwrap();
        let e2 = Pca::fit(&data, 2)
            .unwrap()
            .reconstruction_error(&data)
            .unwrap();
        let e3 = Pca::fit(&data, 3)
            .unwrap()
            .reconstruction_error(&data)
            .unwrap();
        assert!(e1 >= e2 - 1e-12);
        assert!(e2 >= e3 - 1e-12);
    }

    #[test]
    fn transform_then_inverse_is_projection() {
        let mut r = rng();
        let data = line_data(&mut r, 200);
        let pca = Pca::fit(&data, 1).unwrap();
        let z = pca.transform(&data).unwrap();
        assert_eq!(z.shape(), (200, 1));
        let back = pca.inverse_transform(&z).unwrap();
        assert_eq!(back.shape(), (200, 3));
        // Data is near a line, so rank-1 reconstruction is accurate.
        let err = pca.reconstruction_error(&data).unwrap();
        assert!(err < 0.02, "error {err}");
        // Projected data is centred.
        let col = z.col(0);
        let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn byte_round_trip_transforms_bit_identically() {
        let mut r = rng();
        let data = line_data(&mut r, 200);
        let pca = Pca::fit(&data, 2).unwrap();
        let back = Pca::from_bytes(&pca.to_bytes()).unwrap();
        assert_eq!(back.mean(), pca.mean());
        assert_eq!(back.components().as_slice(), pca.components().as_slice());
        assert_eq!(back.eigenvalues(), pca.eigenvalues());
        assert_eq!(
            back.transform(&data).unwrap().as_slice(),
            pca.transform(&data).unwrap().as_slice()
        );

        let dp = DpPca::fit(&mut r, &data.scale(0.05), 2, 0.7).unwrap();
        let dp_back = DpPca::from_bytes(&dp.to_bytes()).unwrap();
        assert_eq!(dp_back.epsilon(), dp.epsilon());
        assert_eq!(
            dp_back.transform_row(data.row(0)).unwrap(),
            dp.transform_row(data.row(0)).unwrap()
        );
    }

    #[test]
    fn from_bytes_rejects_malformed_buffers() {
        let mut r = rng();
        let pca = Pca::fit(&line_data(&mut r, 50), 2).unwrap();
        let bytes = pca.to_bytes();
        assert!(Pca::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut corrupted = bytes.clone();
        corrupted[25] ^= 0x04;
        assert!(Pca::from_bytes(&corrupted).is_err());
        // A Pca buffer is not a DpPca buffer (wrong tag).
        assert!(matches!(
            DpPca::from_bytes(&bytes),
            Err(p3gm_store::StoreError::WrongTag { .. })
        ));
    }

    #[test]
    fn validation_errors() {
        let mut r = rng();
        let data = line_data(&mut r, 20);
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 4).is_err());
        assert!(Pca::fit(&Matrix::zeros(0, 3), 1).is_err());
        let pca = Pca::fit(&data, 2).unwrap();
        assert!(pca.transform_row(&[1.0]).is_err());
        assert!(pca.inverse_transform_row(&[1.0, 2.0, 3.0]).is_err());
        assert!(DpPca::fit(&mut r, &data, 2, 0.0).is_err());
    }

    #[test]
    fn dp_pca_with_huge_budget_matches_exact_direction() {
        let mut r = rng();
        // Scale rows into the unit ball as the mechanism assumes.
        let raw = line_data(&mut r, 800);
        let scale = raw
            .row_iter()
            .map(p3gm_linalg::vector::norm2)
            .fold(0.0_f64, f64::max);
        let data = raw.scale(1.0 / scale);
        let exact = Pca::fit(&data, 1).unwrap();
        let dp = DpPca::fit(&mut r, &data, 1, 1e6).unwrap();
        let v_exact = exact.components().col(0);
        let v_dp = dp.pca().components().col(0);
        let cos: f64 = v_exact
            .iter()
            .zip(v_dp.iter())
            .map(|(a, b)| a * b)
            .sum::<f64>()
            .abs();
        assert!(cos > 0.99, "cosine similarity {cos}");
        assert!((dp.epsilon() - 1e6).abs() < 1.0);
        assert_eq!(dp.n_components(), 1);
    }

    #[test]
    fn dp_pca_small_budget_adds_distortion_but_stays_usable() {
        let mut r = rng();
        let raw = line_data(&mut r, 800);
        let scale = raw
            .row_iter()
            .map(p3gm_linalg::vector::norm2)
            .fold(0.0_f64, f64::max);
        let data = raw.scale(1.0 / scale);
        let exact = Pca::fit(&data, 2).unwrap();
        let dp = DpPca::fit(&mut r, &data, 2, 0.1).unwrap();
        // The noisy reconstruction error is at least the exact one.
        let e_exact = exact.reconstruction_error(&data).unwrap();
        let e_dp = dp.pca().reconstruction_error(&data).unwrap();
        assert!(e_dp >= e_exact - 1e-12);
        // And the transform still produces finite, shaped output.
        let z = dp.transform(&data).unwrap();
        assert_eq!(z.shape(), (800, 2));
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
        // Round-trip of a single row works.
        let z0 = dp.transform_row(data.row(0)).unwrap();
        let back = dp.inverse_transform_row(&z0).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn dp_pca_noise_decreases_with_larger_n() {
        // The Wishart scale is 3/(2nε): more records → less distortion of
        // the leading eigenvector, measured via cosine similarity.
        let mut r = rng();
        let cos_for = |n: usize, r: &mut StdRng| -> f64 {
            let raw = line_data(r, n);
            let scale = raw
                .row_iter()
                .map(p3gm_linalg::vector::norm2)
                .fold(0.0_f64, f64::max);
            let data = raw.scale(1.0 / scale);
            let exact = Pca::fit(&data, 1).unwrap();
            let dp = DpPca::fit(r, &data, 1, 0.5).unwrap();
            exact
                .components()
                .col(0)
                .iter()
                .zip(dp.pca().components().col(0).iter())
                .map(|(a, b)| a * b)
                .sum::<f64>()
                .abs()
        };
        // Average a few repetitions to reduce flakiness.
        let mut small = 0.0;
        let mut large = 0.0;
        for _ in 0..5 {
            small += cos_for(60, &mut r);
            large += cos_for(2000, &mut r);
        }
        assert!(
            large >= small - 0.2,
            "more data should not hurt: small {small}, large {large}"
        );
        assert!(
            large / 5.0 > 0.9,
            "large-n similarity too low: {}",
            large / 5.0
        );
    }
}
