//! Categorical encodings: one-hot encoding (for labels appended to the
//! generative model's input, paper §IV-E) and equal-width discretization
//! (for the PrivBayes baseline, which operates on discrete attributes).

use crate::{PreprocessError, Result};
use p3gm_linalg::Matrix;

/// One-hot encoder for integer class labels `0..n_classes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneHotEncoder {
    n_classes: usize,
}

impl OneHotEncoder {
    /// Creates an encoder for the given number of classes.
    pub fn new(n_classes: usize) -> Result<Self> {
        if n_classes == 0 {
            return Err(PreprocessError::InvalidParameter {
                msg: "n_classes must be positive".to_string(),
            });
        }
        Ok(OneHotEncoder { n_classes })
    }

    /// The number of classes (and the encoded width).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Encodes a label as a one-hot vector.
    pub fn encode(&self, label: usize) -> Result<Vec<f64>> {
        if label >= self.n_classes {
            return Err(PreprocessError::InvalidData {
                msg: format!("label {label} out of range for {} classes", self.n_classes),
            });
        }
        let mut v = vec![0.0; self.n_classes];
        v[label] = 1.0;
        Ok(v)
    }

    /// Decodes a (possibly soft) one-hot vector back to the argmax label.
    pub fn decode(&self, encoded: &[f64]) -> Result<usize> {
        if encoded.len() != self.n_classes {
            return Err(PreprocessError::InvalidData {
                msg: format!("expected {} entries, got {}", self.n_classes, encoded.len()),
            });
        }
        p3gm_linalg::vector::argmax(encoded).ok_or_else(|| PreprocessError::InvalidData {
            msg: "cannot decode an all-NaN vector".to_string(),
        })
    }

    /// Appends the one-hot encoding of each label to the corresponding row
    /// of `data` — this is how P3GM attaches labels so that sampled data
    /// carries a label (paper §IV-E). The combined batch is filled directly
    /// into one contiguous matrix.
    pub fn append_to_rows(&self, data: &Matrix, labels: &[usize]) -> Result<Matrix> {
        if data.rows() != labels.len() {
            return Err(PreprocessError::InvalidData {
                msg: format!("{} rows but {} labels", data.rows(), labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= self.n_classes) {
            return Err(PreprocessError::InvalidData {
                msg: format!("label {bad} out of range for {} classes", self.n_classes),
            });
        }
        let feature_cols = data.cols();
        let mut out = Matrix::zeros(data.rows(), feature_cols + self.n_classes);
        for (i, (row, &label)) in data.row_iter().zip(labels.iter()).enumerate() {
            let dst = out.row_mut(i);
            dst[..feature_cols].copy_from_slice(row);
            dst[feature_cols + label] = 1.0;
        }
        Ok(out)
    }

    /// Serializes the encoder into a framed `p3gm-store` buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::ONE_HOT_ENCODER);
        enc.usize(self.n_classes);
        enc.finish()
    }

    /// Deserializes an encoder from a buffer produced by
    /// [`OneHotEncoder::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<OneHotEncoder> {
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::ONE_HOT_ENCODER)?;
        let n_classes = dec.usize()?;
        dec.finish()?;
        if n_classes == 0 {
            return Err(p3gm_store::StoreError::Invalid {
                msg: "n_classes must be positive".to_string(),
            });
        }
        Ok(OneHotEncoder { n_classes })
    }

    /// Splits rows produced by [`OneHotEncoder::append_to_rows`] back into
    /// features and decoded labels.
    pub fn split_rows(&self, data: &Matrix) -> Result<(Matrix, Vec<usize>)> {
        if data.cols() <= self.n_classes {
            return Err(PreprocessError::InvalidData {
                msg: format!(
                    "{} columns cannot contain {} label columns plus features",
                    data.cols(),
                    self.n_classes
                ),
            });
        }
        let feature_cols = data.cols() - self.n_classes;
        let mut features = Matrix::zeros(data.rows(), feature_cols);
        let mut labels = Vec::with_capacity(data.rows());
        for (i, row) in data.row_iter().enumerate() {
            features.row_mut(i).copy_from_slice(&row[..feature_cols]);
            labels.push(self.decode(&row[feature_cols..])?);
        }
        Ok((features, labels))
    }
}

/// Equal-width discretizer mapping continuous features to bin indices
/// `0..n_bins` (per feature), used by the PrivBayes baseline.
#[derive(Debug, Clone)]
pub struct Discretizer {
    n_bins: usize,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Discretizer {
    /// Fits equal-width bins per feature.
    pub fn fit(data: &Matrix, n_bins: usize) -> Result<Self> {
        if n_bins < 2 {
            return Err(PreprocessError::InvalidParameter {
                msg: format!("need at least 2 bins, got {n_bins}"),
            });
        }
        let (mins, maxs) = p3gm_linalg::stats::column_min_max(data)
            .map_err(|e| PreprocessError::InvalidData { msg: e.to_string() })?;
        Ok(Discretizer { n_bins, mins, maxs })
    }

    /// Number of bins per feature.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }

    /// Maps one row to per-feature bin indices.
    pub fn transform_row(&self, x: &[f64]) -> Result<Vec<usize>> {
        if x.len() != self.mins.len() {
            return Err(PreprocessError::InvalidData {
                msg: format!("expected {} features, got {}", self.mins.len(), x.len()),
            });
        }
        Ok(x.iter()
            .zip(self.mins.iter().zip(self.maxs.iter()))
            .map(|(&v, (&lo, &hi))| {
                if hi <= lo {
                    0
                } else {
                    let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                    ((frac * self.n_bins as f64) as usize).min(self.n_bins - 1)
                }
            })
            .collect())
    }

    /// Maps every row of a matrix to bin indices.
    pub fn transform(&self, data: &Matrix) -> Result<Vec<Vec<usize>>> {
        data.row_iter().map(|r| self.transform_row(r)).collect()
    }

    /// Maps a row of bin indices back to the bin centres in original units.
    pub fn inverse_transform_row(&self, bins: &[usize]) -> Result<Vec<f64>> {
        if bins.len() != self.mins.len() {
            return Err(PreprocessError::InvalidData {
                msg: format!("expected {} features, got {}", self.mins.len(), bins.len()),
            });
        }
        Ok(bins
            .iter()
            .zip(self.mins.iter().zip(self.maxs.iter()))
            .map(|(&b, (&lo, &hi))| {
                if hi <= lo {
                    lo
                } else {
                    let width = (hi - lo) / self.n_bins as f64;
                    lo + (b.min(self.n_bins - 1) as f64 + 0.5) * width
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_roundtrip() {
        let enc = OneHotEncoder::new(3).unwrap();
        assert_eq!(enc.n_classes(), 3);
        assert_eq!(enc.encode(1).unwrap(), vec![0.0, 1.0, 0.0]);
        assert_eq!(enc.decode(&[0.1, 0.2, 0.9]).unwrap(), 2);
        assert!(enc.encode(3).is_err());
        assert!(enc.decode(&[0.1, 0.2]).is_err());
        assert!(OneHotEncoder::new(0).is_err());
    }

    #[test]
    fn append_and_split_rows() {
        let enc = OneHotEncoder::new(2).unwrap();
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let labels = vec![0, 1];
        let combined = enc.append_to_rows(&data, &labels).unwrap();
        assert_eq!(combined.shape(), (2, 4));
        assert_eq!(combined.row(0), &[1.0, 2.0, 1.0, 0.0]);
        assert_eq!(combined.row(1), &[3.0, 4.0, 0.0, 1.0]);
        let (features, decoded) = enc.split_rows(&combined).unwrap();
        assert!(features.approx_eq(&data, 0.0));
        assert_eq!(decoded, labels);
        // Errors.
        assert!(enc.append_to_rows(&data, &[0]).is_err());
        assert!(enc.split_rows(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn one_hot_byte_round_trip() {
        let enc = OneHotEncoder::new(5).unwrap();
        let back = OneHotEncoder::from_bytes(&enc.to_bytes()).unwrap();
        assert_eq!(back, enc);
        // Zero classes inside a valid frame is rejected.
        let mut raw = p3gm_store::Encoder::new(p3gm_store::tags::ONE_HOT_ENCODER);
        raw.usize(0);
        assert!(matches!(
            OneHotEncoder::from_bytes(&raw.finish()),
            Err(p3gm_store::StoreError::Invalid { .. })
        ));
    }

    #[test]
    fn discretizer_bins_and_centres() {
        let data = Matrix::from_rows(&[vec![0.0, 5.0], vec![10.0, 5.0], vec![5.0, 5.0]]).unwrap();
        let disc = Discretizer::fit(&data, 4).unwrap();
        assert_eq!(disc.n_bins(), 4);
        assert_eq!(disc.n_features(), 2);
        // 0 → bin 0, 10 → last bin, 5 → bin 2; constant feature → bin 0.
        assert_eq!(disc.transform_row(&[0.0, 5.0]).unwrap(), vec![0, 0]);
        assert_eq!(disc.transform_row(&[10.0, 5.0]).unwrap(), vec![3, 0]);
        assert_eq!(disc.transform_row(&[5.0, 5.0]).unwrap(), vec![2, 0]);
        // Out-of-range values clamp to the extreme bins.
        assert_eq!(disc.transform_row(&[-5.0, 5.0]).unwrap()[0], 0);
        assert_eq!(disc.transform_row(&[50.0, 5.0]).unwrap()[0], 3);
        // Centres are inside the original range.
        let centres = disc.inverse_transform_row(&[0, 0]).unwrap();
        assert!((centres[0] - 1.25).abs() < 1e-12);
        assert_eq!(centres[1], 5.0);
        let centres = disc.inverse_transform_row(&[3, 0]).unwrap();
        assert!((centres[0] - 8.75).abs() < 1e-12);
    }

    #[test]
    fn discretizer_transform_matrix_and_errors() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let disc = Discretizer::fit(&data, 2).unwrap();
        let bins = disc.transform(&data).unwrap();
        assert_eq!(bins, vec![vec![0], vec![1]]);
        assert!(disc.transform_row(&[0.0, 1.0]).is_err());
        assert!(disc.inverse_transform_row(&[0, 1]).is_err());
        assert!(Discretizer::fit(&data, 1).is_err());
        assert!(Discretizer::fit(&Matrix::zeros(0, 1), 3).is_err());
    }

    #[test]
    fn discretizer_roundtrip_preserves_bin() {
        let data = Matrix::from_rows(&[vec![0.0], vec![100.0]]).unwrap();
        let disc = Discretizer::fit(&data, 10).unwrap();
        for v in [3.0, 47.0, 99.0] {
            let bin = disc.transform_row(&[v]).unwrap();
            let centre = disc.inverse_transform_row(&bin).unwrap();
            let bin2 = disc.transform_row(&centre).unwrap();
            assert_eq!(bin, bin2, "value {v}");
        }
    }
}
