//! # p3gm-preprocess
//!
//! Data preprocessing for the P3GM reproduction.
//!
//! P3GM's Encoding Phase projects the data onto a low-dimensional subspace
//! with **differentially private PCA** (the Wishart mechanism of Jiang et
//! al.), and the tabular pipelines additionally need feature scaling,
//! one-hot encoding of categorical attributes and discretization (for the
//! PrivBayes baseline). This crate provides:
//!
//! * [`pca`] — [`pca::Pca`] (exact) and [`pca::DpPca`] (Wishart mechanism,
//!   (ε_p, 0)-DP), both exposing `transform` / `inverse_transform`.
//! * [`scaler`] — [`scaler::MinMaxScaler`] and [`scaler::StandardScaler`].
//! * [`encoding`] — [`encoding::OneHotEncoder`] for labels/categoricals and
//!   [`encoding::Discretizer`] (equal-width binning) for PrivBayes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod pca;
pub mod scaler;

pub use encoding::{Discretizer, OneHotEncoder};
pub use pca::{DpPca, Pca};
pub use scaler::{MinMaxScaler, StandardScaler};

/// Errors produced by preprocessing.
#[derive(Debug, Clone, PartialEq)]
pub enum PreprocessError {
    /// Invalid hyper-parameter.
    InvalidParameter {
        /// Description of the problem.
        msg: String,
    },
    /// The input data was empty or shaped inconsistently with the fitted
    /// transformer.
    InvalidData {
        /// Description of the problem.
        msg: String,
    },
    /// An underlying linear-algebra failure.
    Numerical {
        /// Description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreprocessError::InvalidParameter { msg } => write!(f, "invalid parameter: {msg}"),
            PreprocessError::InvalidData { msg } => write!(f, "invalid data: {msg}"),
            PreprocessError::Numerical { msg } => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for PreprocessError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PreprocessError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PreprocessError::InvalidParameter {
            msg: "d' = 0".into()
        }
        .to_string()
        .contains("d' = 0"));
        assert!(PreprocessError::InvalidData {
            msg: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(PreprocessError::Numerical {
            msg: "eigen".into()
        }
        .to_string()
        .contains("eigen"));
    }
}
