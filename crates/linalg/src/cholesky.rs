//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The Gaussian-mixture code evaluates multivariate normal log-densities via
//! a Cholesky factor (for the log-determinant and the quadratic form), and
//! the Wishart mechanism samples `W = L G Gᵀ Lᵀ` where `L` is the Cholesky
//! factor of the scale matrix. Both are served by this module.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    lower: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive
    ///   (within a small numerical tolerance).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty { op: "cholesky" });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { lower: l })
    }

    /// Factorizes `a`, adding `jitter` to the diagonal and retrying (doubling
    /// the jitter) up to `max_attempts` times if the matrix is numerically
    /// indefinite. This is the standard way to make EM robust when a noisy
    /// covariance update (DP-EM) produces a slightly indefinite matrix.
    pub fn new_with_jitter(a: &Matrix, jitter: f64, max_attempts: usize) -> Result<Self> {
        match Cholesky::new(a) {
            Ok(c) => Ok(c),
            Err(_) if max_attempts > 0 => {
                let mut current = jitter.max(f64::EPSILON);
                let mut last_err = LinalgError::NotPositiveDefinite {
                    pivot: 0,
                    value: 0.0,
                };
                for _ in 0..max_attempts {
                    let mut regularized = a.clone();
                    regularized.add_diagonal(current);
                    match Cholesky::new(&regularized) {
                        Ok(c) => return Ok(c),
                        Err(e) => {
                            last_err = e;
                            current *= 10.0;
                        }
                    }
                }
                Err(last_err)
            }
            Err(e) => Err(e),
        }
    }

    /// Returns the lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Log-determinant of the original matrix `A`:
    /// `log det A = 2 Σ_i log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.lower.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }

    /// Solves `L y = b` by forward substitution.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve_lower",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                sum -= self.lower.get(i, j) * yj;
            }
            y[i] = sum / self.lower.get(i, i);
        }
        Ok(y)
    }

    /// Solves `Lᵀ x = y` by backward substitution.
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve_upper",
                lhs: (n, n),
                rhs: (y.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.lower.get(j, i) * xj;
            }
            x[i] = sum / self.lower.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A x = b` using the factorization (`A = L Lᵀ`).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Computes the Mahalanobis-style quadratic form `bᵀ A⁻¹ b`.
    ///
    /// Used in the multivariate-normal log-density:
    /// `(x-µ)ᵀ Σ⁻¹ (x-µ) = ||L⁻¹ (x-µ)||²`.
    pub fn quadratic_form(&self, b: &[f64]) -> Result<f64> {
        let y = self.solve_lower(b)?;
        Ok(crate::vector::norm2_squared(&y))
    }

    /// Inverse of the lower factor, `L⁻¹` (itself lower triangular), via one
    /// forward substitution per unit-basis column.
    ///
    /// Multiplying by `L⁻¹` whitens a vector — `‖L⁻¹(x − μ)‖²` is the
    /// Mahalanobis distance — which lets batched density evaluation replace
    /// per-row triangular solves with one matrix product against a
    /// precomputed factor. The entries are deterministic functions of the
    /// factor bits, so caches rebuilt from persisted covariances reproduce
    /// them exactly.
    pub fn inverse_lower(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut unit = vec![0.0; n];
        for j in 0..n {
            unit[j] = 1.0;
            let col = self
                .solve_lower(&unit)
                .expect("unit basis vector has the factor's dimension");
            for (i, &v) in col.iter().enumerate().skip(j) {
                inv.set(i, j, v);
            }
            unit[j] = 0.0;
        }
        inv
    }

    /// Computes the inverse of the original matrix `A`.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut unit = vec![0.0; n];
        for j in 0..n {
            unit[j] = 1.0;
            let col = self.solve(&unit)?;
            for (i, &v) in col.iter().enumerate() {
                inv.set(i, j, v);
            }
            unit[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B is SPD.
        let b = Matrix::from_rows(&[
            vec![1.0, 0.5, 0.0],
            vec![0.2, 1.2, 0.3],
            vec![0.0, 0.4, 0.9],
        ])
        .unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0);
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.lower();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn lower_factor_is_lower_triangular() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let l = chol.lower();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn solve_matches_direct_computation() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn log_determinant_matches_2x2_formula() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let det: f64 = 4.0 * 3.0 - 1.0;
        assert!((chol.log_determinant() - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn quadratic_form_identity() {
        let a = Matrix::identity(3);
        let chol = Cholesky::new(&a).unwrap();
        let q = chol.quadratic_form(&[1.0, 2.0, 2.0]).unwrap();
        assert!((q - 9.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let inv = chol.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&m),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Cholesky::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn jitter_recovers_indefinite_matrix() {
        // Slightly indefinite matrix becomes factorable with jitter.
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 0.999]]).unwrap();
        // Direct factorization may fail or produce a tiny pivot; the jittered
        // version must succeed.
        let chol = Cholesky::new_with_jitter(&m, 1e-3, 8).unwrap();
        assert!(chol.log_determinant().is_finite());

        // A strongly indefinite matrix also succeeds once the jitter grows
        // past the magnitude of the negative eigenvalue.
        let bad = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(Cholesky::new_with_jitter(&bad, 1e-3, 10).is_ok());
    }

    #[test]
    fn solve_dimension_checks() {
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(chol.solve(&[1.0, 2.0]).is_err());
        assert!(chol.solve_lower(&[1.0]).is_err());
        assert!(chol.solve_upper(&[1.0]).is_err());
    }
}
