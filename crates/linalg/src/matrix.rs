//! Dense row-major `f64` matrix.
//!
//! [`Matrix`] is the workspace's single batch representation: one contiguous
//! `Vec<f64>` plus a shape. Every hot path — per-example DP-SGD gradients,
//! the (DP-)EM E-step, PCA covariance accumulation, the classifier suite —
//! operates on these contiguous batches, and the heavy kernels
//! ([`Matrix::matmul`], [`Matrix::gram`]) tile their inner loops for cache
//! locality and parallelize over row chunks through `p3gm-parallel` with
//! deterministic (thread-count-independent) results. Row-list
//! (`Vec<Vec<f64>>`) adapters exist only for the I/O boundary:
//! [`Matrix::from_rows`] in, [`Matrix::to_rows`] out.

use crate::error::LinalgError;
use crate::Result;

/// Register-tile height of the matmul/gram microkernels: output rows
/// processed together so their accumulators stay in registers.
const TILE_MR: usize = 4;
/// Register-tile width of the matmul/gram microkernels: output columns
/// processed together as `[f64; TILE_NR]` accumulator rows — two AVX-512
/// vectors (or four AVX2 vectors) per output row once autovectorized.
const TILE_NR: usize = 16;
/// k-block length of the matmul microkernel, sized so a block of `other`
/// rows stays resident in L1 while the tile sweeps across the output.
const TILE_KC: usize = 256;

/// A dense, row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m.set(i, i, v);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument {
                msg: format!(
                    "buffer of length {} cannot form a {}x{} matrix",
                    data.len(),
                    rows,
                    cols
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// Returns an error if the rows are ragged or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidArgument {
                msg: "rows have inconsistent lengths".to_string(),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds (consistent with slice
    /// indexing; use [`Matrix::try_get`] for a checked variant).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Checked element access.
    pub fn try_get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Returns the `row`-th row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        let start = row * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Returns the `row`-th row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        let start = row * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copies the `col`-th column into a new vector.
    pub fn col(&self, col: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, col)).collect()
    }

    /// Returns an iterator over the rows (as slices).
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns an iterator over contiguous blocks of `rows_per_chunk` rows,
    /// each as one flat row-major slice (the view the parallel kernels hand
    /// to worker threads).
    pub fn rows_chunks(&self, rows_per_chunk: usize) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(rows_per_chunk.max(1) * self.cols.max(1))
    }

    /// Returns an iterator over mutable contiguous blocks of
    /// `rows_per_chunk` rows.
    pub fn rows_chunks_mut(&mut self, rows_per_chunk: usize) -> impl Iterator<Item = &mut [f64]> {
        let cols = self.cols.max(1);
        self.data.chunks_mut(rows_per_chunk.max(1) * cols)
    }

    /// Returns the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the underlying row-major buffer mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Copies the matrix out as a list of rows.
    ///
    /// This is an I/O-boundary adapter (serialization, report rendering);
    /// compute paths should stay on the contiguous buffer.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.row_iter().map(<[f64]>::to_vec).collect()
    }

    /// Returns a new matrix that is the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// The kernel is a register-tiled microkernel: groups of `TILE_MR`
    /// output rows sweep `TILE_NR`-wide column tiles whose accumulators
    /// live in `[f64; TILE_NR]` arrays (packed vector registers after
    /// autovectorization), with the shared dimension blocked by
    /// `TILE_KC` so the active rows of `other` stay in L1. Every output
    /// element still accumulates its `k` terms in strictly increasing `k`
    /// order with a single accumulator, so the result is bit-identical to
    /// the naive i-k-j scalar product — and, because work is parallelized
    /// over independent output-row chunks, bit-identical for every thread
    /// count.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        if self.rows == 0 || other.cols == 0 {
            return Ok(out);
        }
        let out_cols = other.cols;
        let rows_per_chunk = p3gm_parallel::default_tile(self.rows, TILE_MR);
        p3gm_parallel::par_chunks_mut(
            out.as_mut_slice(),
            rows_per_chunk * out_cols,
            |chunk_index, out_chunk| {
                let row_base = chunk_index * rows_per_chunk;
                let chunk_rows = out_chunk.len() / out_cols;
                let mut local = 0;
                while local < chunk_rows {
                    let height = TILE_MR.min(chunk_rows - local);
                    let out_rows = &mut out_chunk[local * out_cols..(local + height) * out_cols];
                    match height {
                        4 => matmul_row_block::<4>(self, other, row_base + local, out_rows),
                        3 => matmul_row_block::<3>(self, other, row_base + local, out_rows),
                        2 => matmul_row_block::<2>(self, other, row_base + local, out_rows),
                        _ => matmul_row_block::<1>(self, other, row_base + local, out_rows),
                    }
                    local += height;
                }
            },
        );
        Ok(out)
    }

    /// Matrix product with a transposed right-hand side, `self * otherᵀ`,
    /// without materializing the transpose.
    ///
    /// Each output element is the lane-folded dot product of a row of
    /// `self` with a row of `other` — bit-identical to
    /// [`crate::vector::dot_lanes`] on the same rows, and therefore
    /// bit-identical for every thread count (lane partials fold in lane
    /// order, the ragged tail in element order; see the `vector` docs).
    /// This is the batched kernel behind the PCA inverse transform and the
    /// `nn` crate's batched linear layers, whose row-major weights are
    /// naturally the transposed operand.
    pub fn matmul_transposed(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_transposed",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        self.matmul_transposed_flat(other.as_slice(), other.rows)
    }

    /// [`Matrix::matmul_transposed`] against a borrowed row-major buffer of
    /// `b_rows` rows of `self.cols()` values each (the layout of a linear
    /// layer's weights), so callers that keep weights in a plain `Vec<f64>`
    /// can use the batched kernel without copying into a `Matrix`.
    pub fn matmul_transposed_flat(&self, b: &[f64], b_rows: usize) -> Result<Matrix> {
        if b.len() != b_rows * self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_transposed",
                lhs: self.shape(),
                rhs: (b_rows, b.len().checked_div(b_rows).unwrap_or(0)),
            });
        }
        let mut out = Matrix::zeros(self.rows, b_rows);
        if self.rows == 0 || b_rows == 0 || self.cols == 0 {
            // Empty shared dimension: every dot product is the empty sum.
            return Ok(out);
        }
        let out_cols = b_rows;
        let rows_per_chunk = p3gm_parallel::default_tile(self.rows, TILE_MR);
        p3gm_parallel::par_chunks_mut(
            out.as_mut_slice(),
            rows_per_chunk * out_cols,
            |chunk_index, out_chunk| {
                let row_base = chunk_index * rows_per_chunk;
                for (local, out_row) in out_chunk.chunks_mut(out_cols).enumerate() {
                    let a_row = self.row(row_base + local);
                    for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(self.cols)) {
                        *o = crate::vector::dot_lanes(a_row, b_row);
                    }
                }
            },
        );
        Ok(out)
    }

    /// Matrix-vector product `self * v`: one lane-folded dot product per
    /// row (see [`crate::vector::dot_lanes`]).
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| crate::vector::dot_lanes(row, v))
            .collect())
    }

    /// Vector-matrix product `v^T * self`, returned as a vector of length
    /// `self.cols()`. The branch-free inner loop is a row-wise axpy that
    /// vectorizes cleanly; rows accumulate in ascending order.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, row) in self.row_iter().enumerate() {
            let vi = v[i];
            for (o, &r) in out.iter_mut().zip(row.iter()) {
                *o += vi * r;
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        // Write into a preallocated buffer: the indexed loop compiles to a
        // straight vectorizable sweep, with no iterator-collect growth
        // checks in the hot path.
        let mut data = vec![0.0f64; self.data.len()];
        for ((o, &a), &b) in data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * scalar).collect(),
        }
    }

    /// Scales every element in place: `self *= scalar`.
    pub fn scale_inplace(&mut self, scalar: f64) {
        for x in &mut self.data {
            *x *= scalar;
        }
    }

    /// In-place element-wise update `self += alpha * other` (the matrix
    /// `axpy` primitive the chunked reductions fold partial batches with).
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Column-wise sums over the rows, accumulated with the deterministic
    /// chunked reduction (fixed chunk boundaries, in-order fold), so the
    /// result is bit-identical for every thread count.
    pub fn column_sums(&self) -> Vec<f64> {
        let chunk_len = p3gm_parallel::default_chunk_len(self.rows);
        p3gm_parallel::par_map_reduce(
            self.rows,
            chunk_len,
            |range| {
                let mut acc = vec![0.0; self.cols];
                for i in range {
                    for (a, &x) in acc.iter_mut().zip(self.row(i).iter()) {
                        *a += x;
                    }
                }
                acc
            },
            |mut a, b| {
                for (x, &y) in a.iter_mut().zip(b.iter()) {
                    *x += y;
                }
                a
            },
        )
        .unwrap_or_else(|| vec![0.0; self.cols])
    }

    /// Adds `scalar` to every diagonal entry in place (useful for ridge
    /// regularization and for repairing nearly-singular noisy covariances).
    pub fn add_diagonal(&mut self, scalar: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += scalar;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Extracts the diagonal as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns a sub-matrix consisting of the listed rows (in order).
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(LinalgError::InvalidArgument {
                    msg: format!("row index {i} out of bounds for {} rows", self.rows),
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Returns a sub-matrix consisting of the listed columns (in order).
    pub fn select_cols(&self, indices: &[usize]) -> Result<Matrix> {
        for &j in indices {
            if j >= self.cols {
                return Err(LinalgError::InvalidArgument {
                    msg: format!("column index {j} out of bounds for {} columns", self.cols),
                });
            }
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            for (jj, &j) in indices.iter().enumerate() {
                out.set(i, jj, self.get(i, j));
            }
        }
        Ok(out)
    }

    /// Stacks two matrices vertically (`self` on top of `other`).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Stacks two matrices horizontally (`self` to the left of `other`).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Computes `self^T * self` (the Gram matrix), a common step when forming
    /// covariance matrices.
    ///
    /// Row chunks accumulate `d x d` partial Gram matrices in parallel
    /// using the same register tiles as [`Matrix::matmul`]; the partials
    /// are folded in
    /// chunk order, so the result is deterministic for every thread count.
    /// Only the upper triangle is accumulated — the Gram matrix is exactly
    /// symmetric because `a[i][j] * a[i][l]` and `a[i][l] * a[i][j]` are
    /// the same product summed in the same row order — and mirrored into
    /// the lower triangle once after the fold, halving the FLOPs.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let chunk_len = p3gm_parallel::default_chunk_len(self.rows);
        let mut out = p3gm_parallel::par_map_reduce(
            self.rows,
            chunk_len,
            |range| {
                let mut partial = Matrix::zeros(d, d);
                gram_chunk(self, range, &mut partial);
                partial
            },
            |mut a, b| {
                a.axpy(1.0, &b).expect("partial Gram shapes match");
                a
            },
        )
        .unwrap_or_else(|| Matrix::zeros(d, d));
        for j in 1..d {
            for l in 0..j {
                let upper = out.data[l * d + j];
                out.data[j * d + l] = upper;
            }
        }
        out
    }

    /// Returns `true` if every element of `self` is within `tol` of the
    /// corresponding element of `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Serializes the matrix into a framed `p3gm-store` buffer (shape
    /// followed by the row-major `f64` bit patterns; bit-exact round trip).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::MATRIX);
        enc.usize(self.rows).usize(self.cols).f64_slice(&self.data);
        enc.finish()
    }

    /// Deserializes a matrix from a buffer produced by [`Matrix::to_bytes`].
    ///
    /// Truncated, corrupted, wrong-tag and wrong-version buffers return a
    /// typed [`p3gm_store::StoreError`]; this never panics.
    pub fn from_bytes(bytes: &[u8]) -> p3gm_store::Result<Matrix> {
        let mut dec = p3gm_store::Decoder::new(bytes, p3gm_store::tags::MATRIX)?;
        let rows = dec.usize()?;
        let cols = dec.usize()?;
        let data = dec.f64_vec()?;
        dec.finish()?;
        match rows.checked_mul(cols) {
            Some(n) if n == data.len() => Ok(Matrix { rows, cols, data }),
            _ => Err(p3gm_store::StoreError::Invalid {
                msg: format!(
                    "matrix shape {rows}x{cols} inconsistent with {} stored values",
                    data.len()
                ),
            }),
        }
    }

    /// Symmetrizes the matrix in place: `A <- (A + A^T)/2`.
    ///
    /// Used after adding (possibly asymmetric) noise to covariance matrices.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, avg);
                self.set(j, i, avg);
            }
        }
    }
}

/// The matmul microkernel: computes `R` consecutive output rows of `a * b`
/// (rows `a_base..a_base + R`) into `out_rows` (row-major, `b.cols()` values
/// per row).
///
/// The output sweeps [`TILE_NR`]-wide column tiles whose accumulators live
/// in `[f64; TILE_NR]` arrays — packed vector registers once LLVM
/// autovectorizes the fixed-bound inner loops — and the shared dimension is
/// blocked by [`TILE_KC`] so the active rows of `b` stay L1-resident.
/// Accumulator tiles are loaded from and stored back to `out_rows` at
/// k-block boundaries, so every output element still sums its `k` terms in
/// strictly increasing `k` order: bit-identical to the naive scalar kernel.
fn matmul_row_block<const R: usize>(a: &Matrix, b: &Matrix, a_base: usize, out_rows: &mut [f64]) {
    let k_dim = a.cols;
    let n = b.cols;
    let a_rows: [&[f64]; R] = std::array::from_fn(|r| a.row(a_base + r));
    let mut k0 = 0;
    loop {
        let k_len = TILE_KC.min(k_dim - k0);
        let mut j0 = 0;
        while j0 + TILE_NR <= n {
            let mut acc = [[0.0f64; TILE_NR]; R];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                acc_row.copy_from_slice(&out_rows[r * n + j0..r * n + j0 + TILE_NR]);
            }
            for k in 0..k_len {
                let b_row = &b.row(k0 + k)[j0..j0 + TILE_NR];
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = a_rows[r][k0 + k];
                    for (o, &bv) in acc_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out_rows[r * n + j0..r * n + j0 + TILE_NR].copy_from_slice(acc_row);
            }
            j0 += TILE_NR;
        }
        // Ragged column tail narrower than one tile.
        if j0 < n {
            let w = n - j0;
            let mut acc = [[0.0f64; TILE_NR]; R];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                acc_row[..w].copy_from_slice(&out_rows[r * n + j0..r * n + n]);
            }
            for k in 0..k_len {
                let b_row = &b.row(k0 + k)[j0..];
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av = a_rows[r][k0 + k];
                    for (o, &bv) in acc_row[..w].iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out_rows[r * n + j0..r * n + n].copy_from_slice(&acc_row[..w]);
            }
        }
        k0 += k_len;
        if k0 >= k_dim {
            break;
        }
    }
}

/// The gram microkernel: accumulates the `R`-row × `w`-column output tile at
/// `(j0, l0)` of `rowsᵀ rows` into `partial`, where `rows` is a chunk of
/// row-major `d`-wide rows.
///
/// The tile's accumulators stay in registers while all chunk rows stream
/// through once; rows are visited in ascending order per tile, so each
/// output element accumulates its per-row terms in the same order as the
/// scalar kernel.
fn gram_tile<const R: usize>(
    rows: &[f64],
    d: usize,
    j0: usize,
    l0: usize,
    w: usize,
    partial: &mut Matrix,
) {
    let mut acc = [[0.0f64; TILE_NR]; R];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        acc_row[..w].copy_from_slice(&partial.row(j0 + r)[l0..l0 + w]);
    }
    if w == TILE_NR {
        for row in rows.chunks_exact(d) {
            let b_row = &row[l0..l0 + TILE_NR];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let av = row[j0 + r];
                for (o, &bv) in acc_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    } else {
        for row in rows.chunks_exact(d) {
            let b_row = &row[l0..l0 + w];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let av = row[j0 + r];
                for (o, &bv) in acc_row[..w].iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        partial.row_mut(j0 + r)[l0..l0 + w].copy_from_slice(&acc_row[..w]);
    }
}

/// Accumulates one chunk of rows into an upper-triangle-only partial Gram
/// matrix using [`gram_tile`] register tiles; only tiles whose column range
/// reaches the diagonal are computed (the mirror happens once after the
/// chunk fold).
fn gram_chunk(a: &Matrix, range: std::ops::Range<usize>, partial: &mut Matrix) {
    let d = a.cols;
    let rows = &a.data[range.start * d..range.end * d];
    let mut j0 = 0;
    while j0 < d {
        let height = TILE_MR.min(d - j0);
        // Start at the tile column containing the diagonal element (j0, j0).
        let mut l0 = (j0 / TILE_NR) * TILE_NR;
        while l0 < d {
            let w = TILE_NR.min(d - l0);
            match height {
                4 => gram_tile::<4>(rows, d, j0, l0, w, partial),
                3 => gram_tile::<3>(rows, d, j0, l0, w, partial),
                2 => gram_tile::<2>(rows, d, j0, l0, w, partial),
                _ => gram_tile::<1>(rows, d, j0, l0, w, partial),
            }
            l0 += TILE_NR;
        }
        j0 += height;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construct_and_index() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn try_get_bounds() {
        let m = sample();
        assert_eq!(m.try_get(0, 0), Some(1.0));
        assert_eq!(m.try_get(2, 0), None);
        assert_eq!(m.try_get(0, 3), None);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn identity_and_diagonal() {
        let eye = Matrix::identity(3);
        assert_eq!(eye.trace(), 3.0);
        assert_eq!(eye.diagonal(), vec![1.0, 1.0, 1.0]);
        let d = Matrix::from_diagonal(&[2.0, 3.0]);
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = a.transpose();
        let p = a.matmul(&b).unwrap();
        // [[14, 32], [32, 77]]
        assert!(p.approx_eq(
            &Matrix::from_rows(&[vec![14.0, 32.0], vec![32.0, 77.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = sample();
        let p = a.matmul(&Matrix::identity(3)).unwrap();
        assert!(p.approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 0.0, 0.0]).unwrap(), vec![1.0, 4.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = sample();
        let sum = a.add(&a).unwrap();
        assert_eq!(sum.get(1, 2), 12.0);
        let diff = a.sub(&a).unwrap();
        assert_eq!(diff.frobenius_norm(), 0.0);
        let had = a.hadamard(&a).unwrap();
        assert_eq!(had.get(0, 2), 9.0);
        assert!(a.add(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn scale_map_and_diag_update() {
        let a = sample();
        assert_eq!(a.scale(2.0).get(0, 0), 2.0);
        assert_eq!(a.map(|x| x + 1.0).get(0, 0), 2.0);
        let mut sq = Matrix::identity(2);
        sq.add_diagonal(0.5);
        assert_eq!(sq.get(0, 0), 1.5);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = sample();
        let r = a.select_rows(&[1]).unwrap();
        assert_eq!(r.shape(), (1, 3));
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        let c = a.select_cols(&[2, 0]).unwrap();
        assert_eq!(c.row(0), &[3.0, 1.0]);
        assert!(a.select_rows(&[5]).is_err());
        assert!(a.select_cols(&[5]).is_err());
    }

    #[test]
    fn stacking() {
        let a = sample();
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 3));
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.get(0, 3), 1.0);
        assert!(a.vstack(&Matrix::zeros(1, 2)).is_err());
        assert!(a.hstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = sample();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        m.symmetrize();
        assert_eq!(m.get(0, 1), m.get(1, 0));
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(1, 1), 11.0);
    }

    #[test]
    fn to_rows_roundtrips_from_rows() {
        let m = sample();
        let rows = m.to_rows();
        assert_eq!(rows, vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert!(Matrix::from_rows(&rows).unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn rows_chunks_cover_the_buffer() {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        let chunks: Vec<&[f64]> = m.rows_chunks(2).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 6);
        assert_eq!(chunks[2].len(), 3);
        assert_eq!(chunks[1][0], 6.0);
        let mut m2 = m.clone();
        for chunk in m2.rows_chunks_mut(2) {
            for v in chunk.iter_mut() {
                *v += 1.0;
            }
        }
        assert!(m2.approx_eq(&m.map(|x| x + 1.0), 0.0));
    }

    #[test]
    fn axpy_scale_inplace_and_column_sums() {
        let mut a = sample();
        let b = sample();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.get(1, 2), 18.0);
        a.scale_inplace(0.5);
        assert_eq!(a.get(1, 2), 9.0);
        assert!(a.axpy(1.0, &Matrix::zeros(1, 1)).is_err());
        assert_eq!(sample().column_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(Matrix::zeros(0, 2).column_sums(), vec![0.0, 0.0]);
    }

    #[test]
    fn byte_round_trip_is_bit_exact() {
        let m = Matrix::from_fn(7, 5, |i, j| ((i * 5 + j) as f64 * 0.37).sin() * 1e-3);
        let bytes = m.to_bytes();
        let back = Matrix::from_bytes(&bytes).unwrap();
        assert_eq!(back.shape(), m.shape());
        assert_eq!(back.as_slice(), m.as_slice());
        // Empty matrices round-trip too.
        let empty = Matrix::zeros(0, 3);
        assert_eq!(
            Matrix::from_bytes(&empty.to_bytes()).unwrap().shape(),
            (0, 3)
        );
    }

    #[test]
    fn from_bytes_rejects_corruption_and_truncation() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(Matrix::from_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        let mut corrupted = bytes.clone();
        corrupted[bytes.len() / 2] ^= 0x10;
        assert!(Matrix::from_bytes(&corrupted).is_err());
        // A shape that disagrees with the stored data length is rejected
        // even with a valid frame.
        let mut enc = p3gm_store::Encoder::new(p3gm_store::tags::MATRIX);
        enc.usize(2).usize(3).f64_slice(&[1.0; 5]);
        assert!(matches!(
            Matrix::from_bytes(&enc.finish()),
            Err(p3gm_store::StoreError::Invalid { .. })
        ));
    }

    #[test]
    fn parallel_kernels_are_bit_identical_across_thread_counts() {
        let a = Matrix::from_fn(67, 41, |i, j| ((i * 31 + j * 17) % 13) as f64 * 0.37 - 1.1);
        let b = Matrix::from_fn(41, 29, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.23 - 0.7);
        let reference =
            p3gm_parallel::with_threads(1, || (a.matmul(&b).unwrap(), a.gram(), a.column_sums()));
        for threads in [2, 4, 8] {
            let (product, gram, sums) = p3gm_parallel::with_threads(threads, || {
                (a.matmul(&b).unwrap(), a.gram(), a.column_sums())
            });
            assert_eq!(product.as_slice(), reference.0.as_slice());
            assert_eq!(gram.as_slice(), reference.1.as_slice());
            assert_eq!(sums, reference.2);
        }
    }
}
