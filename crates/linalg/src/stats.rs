//! Summary statistics over data matrices (rows = samples, columns = features).
//!
//! PCA, DP-PCA, the Gaussian-mixture initialization and the dataset
//! generators all need column means, centred data and covariance matrices;
//! this module provides them in one place.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Column-wise mean of a data matrix (one entry per feature).
///
/// # Errors
/// Returns [`LinalgError::Empty`] if the matrix has no rows.
pub fn column_means(data: &Matrix) -> Result<Vec<f64>> {
    if data.rows() == 0 {
        return Err(LinalgError::Empty { op: "column_means" });
    }
    let mut means = data.column_sums();
    let n = data.rows() as f64;
    for m in &mut means {
        *m /= n;
    }
    Ok(means)
}

/// Column-wise population variance of a data matrix.
pub fn column_variances(data: &Matrix) -> Result<Vec<f64>> {
    let means = column_means(data)?;
    let mut vars = vec![0.0; data.cols()];
    for row in data.row_iter() {
        for ((v, &x), &m) in vars.iter_mut().zip(row.iter()).zip(means.iter()) {
            let d = x - m;
            *v += d * d;
        }
    }
    let n = data.rows() as f64;
    for v in &mut vars {
        *v /= n;
    }
    Ok(vars)
}

/// Column-wise minimum and maximum of a data matrix.
pub fn column_min_max(data: &Matrix) -> Result<(Vec<f64>, Vec<f64>)> {
    if data.rows() == 0 {
        return Err(LinalgError::Empty {
            op: "column_min_max",
        });
    }
    let mut mins = data.row(0).to_vec();
    let mut maxs = data.row(0).to_vec();
    for row in data.row_iter().skip(1) {
        for ((lo, hi), &x) in mins.iter_mut().zip(maxs.iter_mut()).zip(row.iter()) {
            if x < *lo {
                *lo = x;
            }
            if x > *hi {
                *hi = x;
            }
        }
    }
    Ok((mins, maxs))
}

/// Returns a copy of `data` with the given per-column means subtracted.
pub fn center(data: &Matrix, means: &[f64]) -> Result<Matrix> {
    if means.len() != data.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "center",
            lhs: data.shape(),
            rhs: (1, means.len()),
        });
    }
    let mut out = data.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        for (x, &m) in row.iter_mut().zip(means.iter()) {
            *x -= m;
        }
    }
    Ok(out)
}

/// Population covariance matrix of a data matrix (divides by `n`).
///
/// If `means` is `None` the column means are computed from the data; passing
/// precomputed means matches the paper's assumption that the global mean is
/// publicly available for DP-PCA (see paper footnote 2).
pub fn covariance_matrix(data: &Matrix, means: Option<&[f64]>) -> Result<Matrix> {
    if data.rows() == 0 {
        return Err(LinalgError::Empty {
            op: "covariance_matrix",
        });
    }
    let owned_means;
    let means = match means {
        Some(m) => m,
        None => {
            owned_means = column_means(data)?;
            &owned_means
        }
    };
    let centered = center(data, means)?;
    let gram = centered.gram();
    Ok(gram.scale(1.0 / data.rows() as f64))
}

/// Scatter matrix `Xᵀ X / n` without centering.
///
/// DP-PCA in the paper perturbs the second-moment matrix of (pre-normalized)
/// data; when rows are already centred or normalized to the unit ball this is
/// the quantity whose sensitivity is bounded by 1.
pub fn scatter_matrix(data: &Matrix) -> Result<Matrix> {
    if data.rows() == 0 {
        return Err(LinalgError::Empty {
            op: "scatter_matrix",
        });
    }
    Ok(data.gram().scale(1.0 / data.rows() as f64))
}

/// Pearson correlation between two equal-length slices.
///
/// Returns 0.0 when either slice has zero variance.
pub fn correlation(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "correlation",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    if a.is_empty() {
        return Err(LinalgError::Empty { op: "correlation" });
    }
    let ma = crate::vector::mean(a);
    let mb = crate::vector::mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ])
        .unwrap()
    }

    #[test]
    fn means_and_variances() {
        let d = data();
        assert_eq!(column_means(&d).unwrap(), vec![4.0, 5.0]);
        let v = column_variances(&d).unwrap();
        assert!((v[0] - 5.0).abs() < 1e-12);
        assert!((v[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let (lo, hi) = column_min_max(&data()).unwrap();
        assert_eq!(lo, vec![1.0, 2.0]);
        assert_eq!(hi, vec![7.0, 8.0]);
    }

    #[test]
    fn center_zeroes_means() {
        let d = data();
        let means = column_means(&d).unwrap();
        let c = center(&d, &means).unwrap();
        let new_means = column_means(&c).unwrap();
        assert!(new_means.iter().all(|m| m.abs() < 1e-12));
        assert!(center(&d, &[1.0]).is_err());
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let d = data();
        let cov = covariance_matrix(&d, None).unwrap();
        // Both columns have variance 5 and covariance 5 (perfect correlation).
        assert!((cov.get(0, 0) - 5.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 5.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 5.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - cov.get(1, 0)).abs() < 1e-12);
    }

    #[test]
    fn covariance_with_precomputed_means() {
        let d = data();
        let means = column_means(&d).unwrap();
        let a = covariance_matrix(&d, Some(&means)).unwrap();
        let b = covariance_matrix(&d, None).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn scatter_matrix_basics() {
        let d = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let s = scatter_matrix(&d).unwrap();
        assert!(s.approx_eq(&Matrix::identity(2).scale(0.5), 1e-12));
    }

    #[test]
    fn correlation_values() {
        let a = [1.0, 2.0, 3.0];
        assert!((correlation(&a, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&a, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&a, &[5.0, 5.0, 5.0]).unwrap(), 0.0);
        assert!(correlation(&a, &[1.0]).is_err());
        assert!(correlation(&[], &[]).is_err());
    }

    #[test]
    fn empty_inputs_rejected() {
        let empty = Matrix::zeros(0, 3);
        assert!(column_means(&empty).is_err());
        assert!(column_min_max(&empty).is_err());
        assert!(covariance_matrix(&empty, None).is_err());
        assert!(scatter_matrix(&empty).is_err());
    }
}
