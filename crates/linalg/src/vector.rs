//! Slice-level vector kernels.
//!
//! These free functions are the innermost loops of the neural-network and
//! classifier crates, so they avoid allocation wherever possible and operate
//! directly on `&[f64]` / `&mut [f64]`.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length is used (standard `zip` semantics), which would silently
/// produce wrong results — callers are expected to guarantee matching
/// lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_squared(a: &[f64]) -> f64 {
    dot(a, a)
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm (maximum absolute value).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// `y += alpha * x` (the BLAS `axpy` primitive).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise sum of two slices into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// Element-wise difference of two slices into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// Element-wise product of two slices into a new vector.
pub fn mul(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "mul: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect()
}

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance of a slice (divides by `n`). Returns `0.0` for slices
/// with fewer than one element.
pub fn variance(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Sum of a slice.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Index of the maximum element (first occurrence). Returns `None` for an
/// empty slice or a slice that is all NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first occurrence). Returns `None` for an
/// empty slice or a slice that is all NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let neg: Vec<f64> = a.iter().map(|&x| -x).collect();
    argmax(&neg)
}

/// Clips the L2 norm of `x` to at most `max_norm`, in place, returning the
/// original norm.
///
/// This is the gradient-clipping operator `ψ_C` of DP-SGD (paper §II-D):
/// `ψ_C(g) = g * min(1, C / ||g||₂)`.
pub fn clip_norm(x: &mut [f64], max_norm: f64) -> f64 {
    let n = norm2(x);
    if n > max_norm && n > 0.0 {
        let factor = max_norm / n;
        scale(factor, x);
    }
    n
}

/// Numerically-stable log-sum-exp of a slice.
///
/// Returns negative infinity for an empty slice.
pub fn log_sum_exp(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NEG_INFINITY;
    }
    let max = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max.is_infinite() {
        return max;
    }
    let sum: f64 = a.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Softmax of a slice, computed in a numerically stable way.
pub fn softmax(a: &[f64]) -> Vec<f64> {
    if a.is_empty() {
        return Vec::new();
    }
    let lse = log_sum_exp(a);
    a.iter().map(|&x| (x - lse).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm2_squared(&[3.0, 4.0]), 25.0);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(norm_inf(&[-1.0, 2.0, -3.0]), 3.0);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_scale_add_sub_mul() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5]);
        assert_eq!(add(&[1.0], &[2.0]), vec![3.0]);
        assert_eq!(sub(&[1.0], &[2.0]), vec![-1.0]);
        assert_eq!(mul(&[2.0], &[3.0]), vec![6.0]);
    }

    #[test]
    fn summary_statistics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(sum(&[1.0, 2.0]), 3.0);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, 3.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn clip_norm_behaviour() {
        let mut g = vec![3.0, 4.0];
        let orig = clip_norm(&mut g, 1.0);
        assert!((orig - 5.0).abs() < 1e-12);
        assert!((norm2(&g) - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((g[0] / g[1] - 0.75).abs() < 1e-12);

        // Below the bound: unchanged.
        let mut small = vec![0.1, 0.1];
        clip_norm(&mut small, 1.0);
        assert_eq!(small, vec![0.1, 0.1]);

        // Zero vector stays zero.
        let mut zero = vec![0.0, 0.0];
        clip_norm(&mut zero, 1.0);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn log_sum_exp_stability() {
        // Large values should not overflow.
        let v = vec![1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        assert!(softmax(&[]).is_empty());
    }
}
