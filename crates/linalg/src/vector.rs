//! Slice-level vector kernels.
//!
//! These free functions are the innermost loops of the neural-network and
//! classifier crates, so they avoid allocation wherever possible and operate
//! directly on `&[f64]` / `&mut [f64]`.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length is used (standard `zip` semantics), which would silently
/// produce wrong results — callers are expected to guarantee matching
/// lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// The SIMD lane width shared by every lane-folded kernel in this
/// workspace: reductions split their input into groups of `LANES` strided
/// partial accumulators, then fold the lanes **in lane order** followed by
/// the ragged tail **in element order**. The fold order is a pure function
/// of the input length, so lane-folded results are bit-identical across
/// thread counts and across hardware (Rust never contracts `a * b + c`
/// into a fused multiply-add unless `mul_add` is spelled out).
pub const LANES: usize = 4;

/// Dot product with [`LANES`] fixed-order partial accumulators.
///
/// Shaped for autovectorization: the main loop walks `LANES`-wide chunks of
/// both slices and keeps one accumulator per lane, so LLVM turns it into
/// packed multiply/add without any reassociation license. The result
/// generally differs from [`dot`] in the last few ULPs (different — but
/// still fixed — summation order).
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot_lanes(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot_lanes: length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    // Lane partials fold in lane order, then the tail in element order.
    let mut s = 0.0;
    for &l in &acc {
        s += l;
    }
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        s += x * y;
    }
    s
}

/// Squared Euclidean norm with [`LANES`] fixed-order partial accumulators;
/// the lane-folded sibling of [`norm2_squared`] (same fold order as
/// [`dot_lanes`]).
#[inline]
pub fn norm2_squared_lanes(a: &[f64]) -> f64 {
    dot_lanes(a, a)
}

/// Squared Euclidean distance with [`LANES`] fixed-order partial
/// accumulators; the lane-folded sibling of [`squared_distance`].
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn squared_distance_lanes(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance_lanes: length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            acc[l] += d * d;
        }
    }
    let mut s = 0.0;
    for &l in &acc {
        s += l;
    }
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_squared(a: &[f64]) -> f64 {
    dot(a, a)
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm (maximum absolute value).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// `y += alpha * x` (the BLAS `axpy` primitive).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise sum of two slices into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// Element-wise difference of two slices into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// Element-wise product of two slices into a new vector.
pub fn mul(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "mul: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect()
}

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance of a slice (divides by `n`). Returns `0.0` for slices
/// with fewer than one element.
pub fn variance(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Sum of a slice.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Index of the maximum element (first occurrence). Returns `None` for an
/// empty slice or a slice that is all NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first occurrence). Returns `None` for an
/// empty slice or a slice that is all NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let neg: Vec<f64> = a.iter().map(|&x| -x).collect();
    argmax(&neg)
}

/// Clips the L2 norm of `x` to at most `max_norm`, in place, returning the
/// original norm.
///
/// This is the gradient-clipping operator `ψ_C` of DP-SGD (paper §II-D):
/// `ψ_C(g) = g * min(1, C / ||g||₂)`.
pub fn clip_norm(x: &mut [f64], max_norm: f64) -> f64 {
    let n = norm2(x);
    if n > max_norm && n > 0.0 {
        let factor = max_norm / n;
        scale(factor, x);
    }
    n
}

/// Numerically-stable log-sum-exp of a slice.
///
/// Returns negative infinity for an empty slice.
pub fn log_sum_exp(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NEG_INFINITY;
    }
    let max = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max.is_infinite() {
        return max;
    }
    let sum: f64 = a.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Softmax of a slice, computed in a numerically stable way.
pub fn softmax(a: &[f64]) -> Vec<f64> {
    if a.is_empty() {
        return Vec::new();
    }
    let lse = log_sum_exp(a);
    a.iter().map(|&x| (x - lse).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm2_squared(&[3.0, 4.0]), 25.0);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(norm_inf(&[-1.0, 2.0, -3.0]), 3.0);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_scale_add_sub_mul() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5]);
        assert_eq!(add(&[1.0], &[2.0]), vec![3.0]);
        assert_eq!(sub(&[1.0], &[2.0]), vec![-1.0]);
        assert_eq!(mul(&[2.0], &[3.0]), vec![6.0]);
    }

    #[test]
    fn summary_statistics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(sum(&[1.0, 2.0]), 3.0);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, 3.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn clip_norm_behaviour() {
        let mut g = vec![3.0, 4.0];
        let orig = clip_norm(&mut g, 1.0);
        assert!((orig - 5.0).abs() < 1e-12);
        assert!((norm2(&g) - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((g[0] / g[1] - 0.75).abs() < 1e-12);

        // Below the bound: unchanged.
        let mut small = vec![0.1, 0.1];
        clip_norm(&mut small, 1.0);
        assert_eq!(small, vec![0.1, 0.1]);

        // Zero vector stays zero.
        let mut zero = vec![0.0, 0.0];
        clip_norm(&mut zero, 1.0);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn log_sum_exp_stability() {
        // Large values should not overflow.
        let v = vec![1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        assert!(softmax(&[]).is_empty());
    }
}
