//! Error types for linear-algebra operations.

use std::fmt;

/// Errors produced by the linear-algebra primitives.
///
/// All fallible operations in this crate return [`LinalgError`] rather than
/// panicking so that callers (e.g. DP-EM, which may produce an
/// ill-conditioned noisy covariance) can recover gracefully.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Actual shape of the offending matrix.
        shape: (usize, usize),
    },
    /// Cholesky factorization failed because the matrix is not positive
    /// definite (or is numerically indefinite).
    NotPositiveDefinite {
        /// Index of the pivot where the factorization broke down.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// The Jacobi eigen-solver did not converge within its sweep budget.
    EigenNoConvergence {
        /// Off-diagonal Frobenius norm remaining after the final sweep.
        off_diagonal: f64,
    },
    /// A singular matrix was passed to an operation that requires full rank.
    Singular {
        /// Description of the operation that required an invertible matrix.
        op: &'static str,
    },
    /// An argument was empty (zero rows or zero columns) where data was
    /// required.
    Empty {
        /// Description of the operation that received the empty argument.
        op: &'static str,
    },
    /// An argument was out of its valid range.
    InvalidArgument {
        /// Description of the invalid argument.
        msg: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value}"
            ),
            LinalgError::EigenNoConvergence { off_diagonal } => write!(
                f,
                "Jacobi eigen-solver failed to converge (remaining off-diagonal norm {off_diagonal})"
            ),
            LinalgError::Singular { op } => write!(f, "singular matrix in {op}"),
            LinalgError::Empty { op } => write!(f, "empty input in {op}"),
            LinalgError::InvalidArgument { msg } => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn display_not_positive_definite() {
        let err = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -0.5,
        };
        assert!(err.to_string().contains("pivot 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::Singular { op: "inverse" });
    }

    #[test]
    fn display_other_variants() {
        assert!(LinalgError::NotSquare { shape: (2, 3) }
            .to_string()
            .contains("square"));
        assert!(LinalgError::EigenNoConvergence { off_diagonal: 1.0 }
            .to_string()
            .contains("converge"));
        assert!(LinalgError::Empty { op: "mean" }
            .to_string()
            .contains("empty"));
        assert!(LinalgError::InvalidArgument {
            msg: "k must be > 0".into()
        }
        .to_string()
        .contains("k must be > 0"));
    }
}
