//! Symmetric eigen-decomposition via the cyclic Jacobi method.
//!
//! (DP-)PCA only ever needs the eigen-decomposition of a symmetric (noisy)
//! covariance matrix. The cyclic Jacobi algorithm is simple, numerically
//! robust, and fast enough for the dimensionalities used in the paper's
//! experiments (tens to a few hundred features), so it is the only
//! eigen-solver in this workspace.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Result of a symmetric eigen-decomposition `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted in descending order and `eigenvectors` stores the
/// corresponding eigenvectors as **columns**, so
/// `eigenvectors.col(i)` is the unit eigenvector for `eigenvalues[i]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose `i`-th column is the eigenvector for `eigenvalues[i]`.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the eigen-decomposition of the symmetric matrix `a`.
    ///
    /// The input must be square; only the symmetric part is meaningful (the
    /// algorithm reads both triangles, so callers should symmetrize noisy
    /// matrices first, e.g. with [`Matrix::symmetrize`]).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square inputs and
    /// [`LinalgError::EigenNoConvergence`] if the off-diagonal mass does not
    /// vanish within the sweep budget (which does not happen for genuinely
    /// symmetric inputs of the sizes used here).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty { op: "eigen" });
        }

        let mut m = a.clone();
        let mut v = Matrix::identity(n);

        // Convergence threshold relative to the magnitude of the matrix, so
        // the solver behaves sensibly for both tiny and huge covariances.
        let scale = a.max_abs().max(f64::MIN_POSITIVE);
        let tol = 1e-14 * scale;
        let max_sweeps = 100;

        for _sweep in 0..max_sweeps {
            let off = off_diagonal_norm(&m);
            if off <= tol {
                break;
            }
            for p in 0..n - 1 {
                for q in (p + 1)..n {
                    let apq = m.get(p, q);
                    if apq.abs() <= tol * 1e-2 {
                        continue;
                    }
                    let app = m.get(p, p);
                    let aqq = m.get(q, q);
                    // Standard Jacobi rotation angle.
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    apply_rotation(&mut m, p, q, c, s);
                    accumulate_rotation(&mut v, p, q, c, s);
                }
            }
        }

        let final_off = off_diagonal_norm(&m);
        if final_off > tol * 1e3 {
            return Err(LinalgError::EigenNoConvergence {
                off_diagonal: final_off,
            });
        }

        // Extract eigenpairs and sort by descending eigenvalue.
        let mut pairs: Vec<(f64, Vec<f64>)> = (0..n).map(|i| (m.get(i, i), v.col(i))).collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let eigenvalues: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (j, (_, vec)) in pairs.iter().enumerate() {
            for (i, &x) in vec.iter().enumerate() {
                eigenvectors.set(i, j, x);
            }
        }

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Returns the top-`k` eigenvectors as a `d x k` matrix (columns are the
    /// leading eigenvectors). `k` is clamped to the matrix dimension.
    pub fn top_k_eigenvectors(&self, k: usize) -> Matrix {
        let d = self.eigenvectors.rows();
        let k = k.min(d);
        let idx: Vec<usize> = (0..k).collect();
        self.eigenvectors
            .select_cols(&idx)
            .expect("indices are in range by construction")
    }

    /// Fraction of total (absolute) variance explained by the top-`k`
    /// eigenvalues. Returns 1.0 when the spectrum sums to zero.
    pub fn explained_variance_ratio(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().map(|l| l.abs()).sum();
        if total == 0.0 {
            return 1.0;
        }
        let k = k.min(self.eigenvalues.len());
        self.eigenvalues[..k].iter().map(|l| l.abs()).sum::<f64>() / total
    }

    /// Reconstructs the original matrix `V diag(λ) Vᵀ` (useful for testing).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.eigenvalues.len();
        let lambda = Matrix::from_diagonal(&self.eigenvalues);
        let v = &self.eigenvectors;
        v.matmul(&lambda)
            .and_then(|m| m.matmul_transposed(v))
            .unwrap_or_else(|_| Matrix::zeros(n, n))
    }
}

/// Frobenius norm of the strictly off-diagonal part of a square matrix.
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let x = m.get(i, j);
                acc += x * x;
            }
        }
    }
    acc.sqrt()
}

/// Applies the two-sided Jacobi rotation G(p,q,θ)ᵀ M G(p,q,θ) in place.
fn apply_rotation(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    // Rotate rows/columns p and q.
    for k in 0..n {
        let mkp = m.get(k, p);
        let mkq = m.get(k, q);
        m.set(k, p, c * mkp - s * mkq);
        m.set(k, q, s * mkp + c * mkq);
    }
    for k in 0..n {
        let mpk = m.get(p, k);
        let mqk = m.get(q, k);
        m.set(p, k, c * mpk - s * mqk);
        m.set(q, k, s * mpk + c * mqk);
    }
}

/// Accumulates the rotation into the eigenvector matrix: V <- V G(p,q,θ).
fn accumulate_rotation(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = Matrix::from_diagonal(&[3.0, 1.0, 2.0]);
        let eig = SymmetricEigen::new(&m).unwrap();
        assert_close(eig.eigenvalues[0], 3.0, 1e-12);
        assert_close(eig.eigenvalues[1], 2.0, 1e-12);
        assert_close(eig.eigenvalues[2], 1.0, 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        assert_close(eig.eigenvalues[0], 3.0, 1e-10);
        assert_close(eig.eigenvalues[1], 1.0, 1e-10);
        // Leading eigenvector is (1,1)/sqrt(2) up to sign.
        let v0 = eig.eigenvectors.col(0);
        assert_close(v0[0].abs(), 1.0 / 2.0_f64.sqrt(), 1e-8);
        assert_close(v0[1].abs(), 1.0 / 2.0_f64.sqrt(), 1e-8);
    }

    #[test]
    fn reconstruction_matches_input() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        assert!(eig.reconstruct().approx_eq(&m, 1e-8));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        let vtv = eig
            .eigenvectors
            .transpose()
            .matmul(&eig.eigenvectors)
            .unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 6.0, 0.0],
            vec![1.0, 0.0, 7.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        assert_close(eig.eigenvalues.iter().sum::<f64>(), m.trace(), 1e-9);
    }

    #[test]
    fn top_k_and_explained_variance() {
        let m = Matrix::from_diagonal(&[4.0, 3.0, 2.0, 1.0]);
        let eig = SymmetricEigen::new(&m).unwrap();
        let top2 = eig.top_k_eigenvectors(2);
        assert_eq!(top2.shape(), (4, 2));
        assert_close(eig.explained_variance_ratio(2), 7.0 / 10.0, 1e-12);
        assert_close(eig.explained_variance_ratio(10), 1.0, 1e-12);
        // Over-large k clamps.
        assert_eq!(eig.top_k_eigenvectors(100).shape(), (4, 4));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn handles_negative_eigenvalues() {
        // Noisy covariance matrices (after the Wishart/Gaussian mechanism)
        // can be indefinite; the solver must still work.
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        assert_close(eig.eigenvalues[0], 3.0, 1e-10);
        assert_close(eig.eigenvalues[1], -1.0, 1e-10);
    }

    #[test]
    fn zero_matrix_explained_variance_is_one() {
        let eig = SymmetricEigen::new(&Matrix::zeros(3, 3)).unwrap();
        assert_close(eig.explained_variance_ratio(1), 1.0, 1e-12);
    }

    #[test]
    fn larger_random_like_matrix() {
        // Deterministic "pseudo-random" symmetric matrix: A = B Bᵀ for a fixed B.
        let d = 12;
        let b = Matrix::from_fn(d, d, |i, j| ((i * 7 + j * 13) % 11) as f64 / 11.0 - 0.5);
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.symmetrize();
        let eig = SymmetricEigen::new(&a).unwrap();
        // PSD: all eigenvalues >= -tol.
        assert!(eig.eigenvalues.iter().all(|&l| l > -1e-9));
        assert!(eig.reconstruct().approx_eq(&a, 1e-7));
    }
}
