//! # p3gm-linalg
//!
//! Dense linear-algebra substrate for the P3GM reproduction.
//!
//! The crate provides exactly the primitives that the rest of the workspace
//! needs and nothing more:
//!
//! * [`Matrix`] — a row-major, heap-allocated dense `f64` matrix: the
//!   workspace's single contiguous batch representation, flowing end-to-end
//!   from preprocessing through training to evaluation. The heavy kernels
//!   (`matmul`, `gram`, `column_sums`) are blocked for cache locality and
//!   parallelized over row chunks via `p3gm-parallel`, with results that
//!   are bit-identical for every thread count.
//! * [`vector`] — free functions over `&[f64]` slices (dot products, norms,
//!   axpy-style updates) used in the innermost loops of the neural-network
//!   crate.
//! * [`eigen`] — the cyclic Jacobi eigen-decomposition for symmetric
//!   matrices, which backs (DP-)PCA.
//! * [`cholesky`] — Cholesky factorization, triangular solves, log-determinant
//!   and inverse of symmetric positive-definite matrices, which back the
//!   Gaussian-mixture density evaluation and Wishart sampling.
//! * [`stats`] — column means, covariance matrices and related summary
//!   statistics over data matrices.
//!
//! Everything is implemented in safe Rust with no external BLAS so the whole
//! reproduction builds offline; data parallelism comes from the vendored
//! `p3gm-parallel` scoped thread pool (honoring `P3GM_THREADS`), and every
//! kernel is deterministic regardless of the worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod matrix;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use matrix::Matrix;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
