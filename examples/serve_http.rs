//! Serve over HTTP: train P3GM once, write the snapshot to a model
//! directory, start `p3gm-server` on an ephemeral port, and drive it
//! with a plain `std::net::TcpStream` client — list the models, reuse
//! one keep-alive connection for two sampling requests (byte-identical
//! to the same requests on separate connections), download a large
//! batch as a chunked CSV stream, exhaust the privacy budget (HTTP
//! 429), then shut down gracefully.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve_http
//! ```
//!
//! The example is self-terminating (CI runs it).

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::SynthesisSnapshot;
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::datasets::tabular::adult_like;
use p3gm::server::http::ResponseReader;
use p3gm::server::{start, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Writes one HTTP/1.1 request onto an (open, possibly reused) stream
/// in a single `write_all` (multiple small writes on a reused connection
/// would stall on Nagle + delayed ACK).
fn send(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
}

/// One request on a fresh connection; returns `(status, body)`. The
/// framed reader de-chunks streamed bodies and stops at the response's
/// end — the whole client fits in a dozen lines of std + `p3gm::server::http`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    send(&mut stream, method, path, body);
    let response = ResponseReader::new(stream)
        .next_response()
        .expect("read response");
    (
        response.status,
        String::from_utf8(response.body).expect("utf-8 body"),
    )
}

fn main() {
    // 1. Train once — the only step that costs privacy budget.
    let mut rng = StdRng::seed_from_u64(11);
    let dataset = adult_like(&mut rng, 600);
    let (synthesizer, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .expect("prepare training data");
    let config = PgmConfig {
        latent_dim: 6,
        hidden_dim: 32,
        epochs: 2,
        batch_size: 64,
        ..PgmConfig::default()
    };
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).expect("train P3GM");
    let snapshot = SynthesisSnapshot::capture(model).with_synthesizer(synthesizer);
    let stamp = *snapshot.privacy_stamp().expect("private training stamps");
    println!("trained: certified {stamp}");

    // 2. The model directory is the server's unit of deployment: one
    //    snapshot file per model, plus the durable budget ledger.
    let dir = std::env::temp_dir().join(format!("p3gm_serve_http_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create model dir");
    std::fs::write(dir.join("adult-demo.snapshot"), snapshot.to_bytes()).expect("write snapshot");

    // 3. Start the server with a budget that allows five releases: each
    //    sampling response is charged the model's stamped ε, so the sixth
    //    request must be refused with 429.
    let server = start(ServerConfig {
        budget_epsilon: Some(5.5 * stamp.epsilon),
        ..ServerConfig::new(&dir)
    })
    .expect("start server");
    let addr = server.addr();
    println!("serving {} model(s) on http://{addr}", server.model_count());

    // 4. List the models.
    let (status, body) = request(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    println!("GET /models -> {body}");

    // 5. Keep-alive: two sampling requests ride ONE connection, and each
    //    body is byte-identical to the same request on its own fresh
    //    connection — synthesis is deterministic per (model, seed, n)
    //    and the connection reuse is pure transport.
    let body_a = r#"{"seed": 42, "n": 20}"#;
    let body_b = r#"{"seed": 43, "n": 10}"#;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = ResponseReader::new(stream.try_clone().expect("clone"));
    send(&mut stream, "POST", "/models/adult-demo/sample", body_a);
    let first = reader.next_response().expect("first keep-alive response");
    send(&mut stream, "POST", "/models/adult-demo/sample", body_b);
    let second = reader.next_response().expect("second keep-alive response");
    assert_eq!((first.status, second.status), (200, 200));
    assert_eq!(
        first.header("connection"),
        Some("keep-alive"),
        "the server must keep the HTTP/1.1 connection open"
    );
    drop(stream);
    let (_, fresh_a) = request(addr, "POST", "/models/adult-demo/sample", body_a);
    let (_, fresh_b) = request(addr, "POST", "/models/adult-demo/sample", body_b);
    assert_eq!(String::from_utf8(first.body).expect("utf-8"), fresh_a);
    assert_eq!(String::from_utf8(second.body).expect("utf-8"), fresh_b);
    println!("keep-alive verified: 2 requests on one connection, bodies byte-identical to fresh connections");

    // 6. Streamed large-batch download: 10k rows of CSV arrive as
    //    chunked Transfer-Encoding — the server generates and flushes
    //    them chunk by chunk, so the first byte lands long before the
    //    last row exists anywhere in memory.
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    send(
        &mut stream,
        "POST",
        "/models/adult-demo/sample",
        r#"{"seed": 7, "n": 10000, "format": "csv"}"#,
    );
    let streamed = ResponseReader::new(stream)
        .next_response()
        .expect("streamed response");
    assert_eq!(streamed.status, 200);
    assert!(streamed.chunked, "large batches stream as chunked CSV");
    let csv = String::from_utf8(streamed.body).expect("utf-8 csv");
    assert_eq!(csv.lines().count(), 10_000);
    println!(
        "streamed 10000 CSV rows ({} bytes, chunked) in {:?}",
        csv.len(),
        t0.elapsed()
    );

    // 7. The budget is now spent (5 × ε against a 5.5 × ε budget): the
    //    next request is refused with 429 and the remaining budget.
    let (status, body) = request(addr, "POST", "/models/adult-demo/sample", body_a);
    assert_eq!(status, 429, "sixth release must exhaust the budget: {body}");
    println!("sixth request refused: {body}");

    // 8. Graceful shutdown: stop accepting, drain idle keep-alive
    //    connections, finish in-flight work, join.
    server.shutdown();
    println!("server shut down cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
