//! Serve over HTTP: train P3GM once, write 100 tenant snapshots to a
//! model directory, start `p3gm-server` on an ephemeral port with a
//! residency budget holding ~3 decoded models, and drive it with a
//! plain `std::net::TcpStream` client — list all 100 models from
//! headers alone (zero weight payloads decoded), reuse one keep-alive
//! connection for two sampling requests (byte-identical to the same
//! requests on separate connections), download a large batch as a
//! chunked CSV stream, exhaust the privacy budget (HTTP 429), watch
//! LRU eviction in `GET /stats`, then shut down gracefully.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve_http
//! ```
//!
//! The example is self-terminating (CI runs it).

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::{SnapshotHeader, SynthesisSnapshot};
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::datasets::tabular::adult_like;
use p3gm::server::http::ResponseReader;
use p3gm::server::{json, start, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Writes one HTTP/1.1 request onto an (open, possibly reused) stream
/// in a single `write_all` (multiple small writes on a reused connection
/// would stall on Nagle + delayed ACK).
fn send(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
}

/// One request on a fresh connection; returns `(status, body)`. The
/// framed reader de-chunks streamed bodies and stops at the response's
/// end — the whole client fits in a dozen lines of std + `p3gm::server::http`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    send(&mut stream, method, path, body);
    let response = ResponseReader::new(stream)
        .next_response()
        .expect("read response");
    (
        response.status,
        String::from_utf8(response.body).expect("utf-8 body"),
    )
}

fn main() {
    // 1. Train once — the only step that costs privacy budget.
    let mut rng = StdRng::seed_from_u64(11);
    let dataset = adult_like(&mut rng, 600);
    let (synthesizer, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .expect("prepare training data");
    let config = PgmConfig {
        latent_dim: 6,
        hidden_dim: 32,
        epochs: 2,
        batch_size: 64,
        ..PgmConfig::default()
    };
    let (model, _, report) =
        PhasedGenerativeModel::fit_with_report(&mut rng, &prepared, config, None)
            .expect("train P3GM");
    let snapshot = SynthesisSnapshot::capture(model).with_synthesizer(synthesizer);
    let stamp = *snapshot.privacy_stamp().expect("private training stamps");
    println!("trained: certified {stamp}");
    // What the fit *did*, as deterministic telemetry (pure
    // post-processing — none of it fed back into training or (ε, δ)).
    print!("{}", report.render());

    // 2. The model directory is the server's unit of deployment: one
    //    snapshot file per model, plus the durable budget ledger. A
    //    hundred tenants share this node: the demo model plus 99 tenant
    //    snapshots (same trained weights, per-tenant names).
    let dir = std::env::temp_dir().join(format!("p3gm_serve_http_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create model dir");
    let bytes = snapshot.to_bytes();
    std::fs::write(dir.join("adult-demo.snapshot"), &bytes).expect("write snapshot");
    for i in 0..99 {
        std::fs::write(dir.join(format!("tenant-{i:03}.snapshot")), &bytes)
            .expect("write tenant snapshot");
    }

    // 3. Start the server with a residency budget holding ~3 models
    //    (the registry peeks each file's header at startup and decodes
    //    weights lazily on first request) and a privacy budget allowing
    //    five releases per model: each sampling response is charged the
    //    model's stamped ε, so the sixth request must be refused with
    //    429.
    let per_model = SnapshotHeader::peek(&bytes)
        .expect("peek snapshot header")
        .approx_resident_bytes();
    let server = start(
        ServerConfig::builder(&dir)
            .budget_epsilon(Some(5.5 * stamp.epsilon))
            .max_resident_bytes(Some(3 * per_model))
            .build(),
    )
    .expect("start server");
    let addr = server.addr();
    println!("serving {} model(s) on http://{addr}", server.model_count());
    assert_eq!(server.model_count(), 100);

    // 4. List the models — served from headers alone: all 100 listed,
    //    zero weight payloads decoded.
    let (status, body) = request(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    let listed = json::parse(&body)
        .expect("parse /models")
        .get("models")
        .and_then(|m| m.as_arr().map(|a| a.len()))
        .expect("models array");
    assert_eq!(listed, 100, "every tenant lists from its header");
    let stats = server.registry_stats();
    assert_eq!(
        (stats.loads, stats.resident_models),
        (0, 0),
        "listing 100 models must decode zero weight payloads"
    );
    println!("GET /models -> 100 tenants listed, 0 weight payloads decoded");

    // 5. Keep-alive: two sampling requests ride ONE connection, and each
    //    body is byte-identical to the same request on its own fresh
    //    connection — synthesis is deterministic per (model, seed, n)
    //    and the connection reuse is pure transport.
    let body_a = r#"{"seed": 42, "n": 20}"#;
    let body_b = r#"{"seed": 43, "n": 10}"#;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = ResponseReader::new(stream.try_clone().expect("clone"));
    send(&mut stream, "POST", "/models/adult-demo/sample", body_a);
    let first = reader.next_response().expect("first keep-alive response");
    send(&mut stream, "POST", "/models/adult-demo/sample", body_b);
    let second = reader.next_response().expect("second keep-alive response");
    assert_eq!((first.status, second.status), (200, 200));
    assert_eq!(
        first.header("connection"),
        Some("keep-alive"),
        "the server must keep the HTTP/1.1 connection open"
    );
    drop(stream);
    let (_, fresh_a) = request(addr, "POST", "/models/adult-demo/sample", body_a);
    let (_, fresh_b) = request(addr, "POST", "/models/adult-demo/sample", body_b);
    assert_eq!(String::from_utf8(first.body).expect("utf-8"), fresh_a);
    assert_eq!(String::from_utf8(second.body).expect("utf-8"), fresh_b);
    println!("keep-alive verified: 2 requests on one connection, bodies byte-identical to fresh connections");

    // 6. Streamed large-batch download: 10k rows of CSV arrive as
    //    chunked Transfer-Encoding — the server generates and flushes
    //    them chunk by chunk, so the first byte lands long before the
    //    last row exists anywhere in memory.
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    send(
        &mut stream,
        "POST",
        "/models/adult-demo/sample",
        r#"{"seed": 7, "n": 10000, "format": "csv"}"#,
    );
    let streamed = ResponseReader::new(stream)
        .next_response()
        .expect("streamed response");
    assert_eq!(streamed.status, 200);
    assert!(streamed.chunked, "large batches stream as chunked CSV");
    let csv = String::from_utf8(streamed.body).expect("utf-8 csv");
    assert_eq!(csv.lines().count(), 10_000);
    println!(
        "streamed 10000 CSV rows ({} bytes, chunked) in {:?}",
        csv.len(),
        t0.elapsed()
    );

    // 7. The budget is now spent (5 × ε against a 5.5 × ε budget): the
    //    next request is refused with 429 and the remaining budget.
    let (status, body) = request(addr, "POST", "/models/adult-demo/sample", body_a);
    assert_eq!(status, 429, "sixth release must exhaust the budget: {body}");
    println!("sixth request refused: {body}");

    // 7b. Everything above is visible on GET /metrics as Prometheus
    //     text: request counts by route and status, the monotone 429
    //     denial counter, the per-model budget gauges, and the live
    //     connection gauge — scraped here while one idle keep-alive
    //     connection is deliberately held open alongside the scrape's
    //     own connection.
    let mut held = TcpStream::connect(addr).expect("connect held");
    held.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    send(&mut held, "GET", "/healthz", "");
    let mut held_reader = ResponseReader::new(held.try_clone().expect("clone held"));
    assert_eq!(
        held_reader.next_response().expect("held response").status,
        200
    );
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "p3gm_requests_total{route=\"/models/{name}/sample\",status=\"200\"}",
        "p3gm_budget_denials_total{model=\"adult-demo\"} 1",
        "p3gm_epsilon_spent{model=\"adult-demo\"}",
        "p3gm_epsilon_remaining{model=\"adult-demo\"}",
        "p3gm_connections_open",
    ] {
        assert!(metrics.contains(needle), "missing {needle:?} in /metrics");
    }
    let open: f64 = metrics
        .lines()
        .find(|l| l.starts_with("p3gm_connections_open"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("connection gauge value");
    assert!(
        open >= 2.0,
        "the held keep-alive connection and the scrape itself must both \
         show in p3gm_connections_open, got {open}"
    );
    drop(held_reader);
    drop(held);
    let shown: Vec<&str> = metrics
        .lines()
        .filter(|l| {
            l.starts_with("p3gm_requests_total")
                || l.starts_with("p3gm_budget_denials_total")
                || l.starts_with("p3gm_connections_open")
                || (l.starts_with("p3gm_epsilon_") && l.contains("adult-demo"))
        })
        .collect();
    println!("GET /metrics ->\n  {}", shown.join("\n  "));

    // 8. Touch six tenants: each first request decodes that tenant's
    //    weights, and the 3-model residency budget evicts the least
    //    recently used — visible in GET /stats. Every model stays
    //    listable and servable; only its weights page in and out.
    for i in 0..6 {
        let (status, _) = request(
            addr,
            "POST",
            &format!("/models/tenant-{i:03}/sample"),
            r#"{"seed": 1, "n": 5}"#,
        );
        assert_eq!(status, 200, "tenant-{i:03} must sample");
    }
    let (status, body) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    println!("GET /stats -> {body}");
    let stats = server.registry_stats();
    assert!(
        stats.resident_models <= 3,
        "residency budget holds ~3 models, {} resident",
        stats.resident_models
    );
    assert!(
        stats.evictions >= 3,
        "6 tenants through a 3-model budget must evict, got {}",
        stats.evictions
    );

    // 9. Graceful shutdown: stop accepting, drain idle keep-alive
    //    connections, finish in-flight work, join.
    server.shutdown();
    println!("server shut down cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
