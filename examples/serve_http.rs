//! Serve over HTTP: train P3GM once, write the snapshot to a model
//! directory, start `p3gm-server` on an ephemeral port, and drive it
//! with a plain `std::net::TcpStream` client — list the models, sample
//! twice with the same seed (byte-identical bodies), exhaust the privacy
//! budget (HTTP 429), then shut down gracefully.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve_http
//! ```
//!
//! The example is self-terminating (CI runs it).

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::SynthesisSnapshot;
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::datasets::tabular::adult_like;
use p3gm::server::{start, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request and returns `(status, body)` — the whole
/// client fits in a dozen lines of std.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    // 1. Train once — the only step that costs privacy budget.
    let mut rng = StdRng::seed_from_u64(11);
    let dataset = adult_like(&mut rng, 600);
    let (synthesizer, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .expect("prepare training data");
    let config = PgmConfig {
        latent_dim: 6,
        hidden_dim: 32,
        epochs: 2,
        batch_size: 64,
        ..PgmConfig::default()
    };
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).expect("train P3GM");
    let snapshot = SynthesisSnapshot::capture(model).with_synthesizer(synthesizer);
    let stamp = *snapshot.privacy_stamp().expect("private training stamps");
    println!("trained: certified {stamp}");

    // 2. The model directory is the server's unit of deployment: one
    //    snapshot file per model, plus the durable budget ledger.
    let dir = std::env::temp_dir().join(format!("p3gm_serve_http_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create model dir");
    std::fs::write(dir.join("adult-demo.snapshot"), snapshot.to_bytes()).expect("write snapshot");

    // 3. Start the server with a budget that allows two releases: each
    //    sampling response is charged the model's stamped ε, so the third
    //    request must be refused with 429.
    let server = start(ServerConfig {
        budget_epsilon: Some(2.5 * stamp.epsilon),
        ..ServerConfig::new(&dir)
    })
    .expect("start server");
    let addr = server.addr();
    println!("serving {} model(s) on http://{addr}", server.model_count());

    // 4. List the models.
    let (status, body) = request(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    println!("GET /models -> {body}");

    // 5. Sample twice with the same seed: the bodies must be
    //    byte-identical — synthesis is deterministic per (model, seed, n)
    //    and the serializer is deterministic too.
    let sample_body = r#"{"seed": 42, "n": 20}"#;
    let (status_a, body_a) = request(addr, "POST", "/models/adult-demo/sample", sample_body);
    let (status_b, body_b) = request(addr, "POST", "/models/adult-demo/sample", sample_body);
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(
        body_a, body_b,
        "same (model, seed, n) must serve identical bytes"
    );
    println!(
        "sampled 20 rows twice with seed 42: bodies byte-identical ({} bytes)",
        body_a.len()
    );

    // 6. The budget is now spent (2 × ε against a 2.5 × ε budget): the
    //    third request is refused with 429 and the remaining budget.
    let (status, body) = request(addr, "POST", "/models/adult-demo/sample", sample_body);
    assert_eq!(status, 429, "third release must exhaust the budget: {body}");
    println!("third request refused: {body}");

    // 7. Graceful shutdown: stop accepting, finish in-flight work, join.
    server.shutdown();
    println!("server shut down cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
