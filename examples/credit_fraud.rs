//! Credit-card fraud scenario (the paper's Kaggle Credit workload):
//! compare P3GM against the DP-GM and PrivBayes baselines on a heavily
//! imbalanced dataset (0.2% positives) at several privacy levels.
//!
//! Run with:
//! ```text
//! cargo run --release --example credit_fraud
//! ```

use p3gm::datasets::DatasetKind;
use p3gm::eval::common::{evaluate_tabular, make_dataset, stratified_split, GenerativeKind};
use p3gm::eval::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let scale = Scale::Smoke; // keep the example snappy; Scale::Paper for the full run

    let dataset = make_dataset(&mut rng, DatasetKind::KaggleCredit, scale);
    let split = stratified_split(&mut rng, &dataset, 0.25);
    println!(
        "Kaggle-Credit-like data: {} rows, {} features, {:.2}% positive",
        dataset.n_samples(),
        dataset.n_features(),
        100.0 * dataset.positive_fraction()
    );

    let models = [
        GenerativeKind::Original,
        GenerativeKind::Pgm,
        GenerativeKind::P3gm,
        GenerativeKind::DpGm,
        GenerativeKind::PrivBayes,
    ];
    let epsilons = [0.5, 1.0, 5.0];

    println!("\nmean AUROC / AUPRC over four classifiers (train on synthetic, test on real):");
    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "model", "epsilon", "AUROC", "AUPRC"
    );
    for model in models {
        if model.is_private() {
            for eps in epsilons {
                let report =
                    evaluate_tabular(&mut rng, model, &split.train, &split.test, scale, eps);
                println!(
                    "{:<12} {:>8.1} {:>10.4} {:>10.4}",
                    model.name(),
                    eps,
                    report.mean_auroc(),
                    report.mean_auprc()
                );
            }
        } else {
            let report = evaluate_tabular(&mut rng, model, &split.train, &split.test, scale, 1.0);
            println!(
                "{:<12} {:>8} {:>10.4} {:>10.4}",
                model.name(),
                "-",
                report.mean_auroc(),
                report.mean_auprc()
            );
        }
    }
    println!(
        "\nExpected shape (paper Fig. 4): P3GM degrades gracefully as epsilon shrinks,\n\
         DP-GM degrades sharply, PrivBayes stays low at every budget."
    );
}
