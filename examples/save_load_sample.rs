//! Persist & serve: train P3GM once, save the model to a versioned
//! snapshot file, load it in a (conceptually different) serving process,
//! and serve seedable synthesis requests — sampling is post-processing,
//! so serving costs no additional privacy budget.
//!
//! Run with:
//! ```text
//! cargo run --release --example save_load_sample
//! ```

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::{SampleRequest, SynthesisSnapshot};
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::datasets::tabular::adult_like;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Train P3GM once — this is the only step that consumes privacy
    //    budget.
    let dataset = adult_like(&mut rng, 1500);
    let (synthesizer, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .expect("prepare training data");
    let config = PgmConfig {
        latent_dim: 8,
        hidden_dim: 48,
        epochs: 4,
        batch_size: 64,
        ..PgmConfig::default()
    };
    let (model, _history) =
        PhasedGenerativeModel::fit(&mut rng, &prepared, config).expect("train P3GM");

    // 2. Capture the trained model (plus the feature/label transform and
    //    the certified privacy stamp) into one snapshot buffer and write it
    //    to disk. The snapshot file is the unit a serving fleet shards,
    //    caches and replicates.
    let snapshot = SynthesisSnapshot::capture(model.clone()).with_synthesizer(synthesizer);
    let bytes = snapshot.to_bytes();
    let path = std::env::temp_dir().join("p3gm_model.snapshot");
    std::fs::write(&path, &bytes).expect("write snapshot");
    println!("saved {} byte snapshot to {}", bytes.len(), path.display());

    // 3. A serving process loads the snapshot once...
    let loaded = SynthesisSnapshot::from_bytes(&std::fs::read(&path).expect("read snapshot"))
        .expect("decode snapshot");
    if let Some(stamp) = loaded.privacy_stamp() {
        println!(
            "snapshot certifies ({:.3}, {:.0e})-DP (optimal RDP order {})",
            stamp.epsilon, stamp.delta, stamp.optimal_order
        );
    }

    // 4. ...and serves concurrent, seedable requests. Each request's rows
    //    are fully determined by its seed, so any replica answers any
    //    request identically.
    let requests: Vec<SampleRequest> = (0..4)
        .map(|i| SampleRequest {
            seed: 100 + i,
            n: 250,
        })
        .collect();
    let responses = loaded.serve(&requests);
    for (req, rows) in requests.iter().zip(responses.iter()) {
        println!(
            "request seed {:>3} -> {} synthetic rows",
            req.seed,
            rows.rows()
        );
    }

    // 5. The round-trip guarantee: sampling the loaded snapshot with a
    //    fixed seed is bit-identical to the canonical stream of the
    //    snapshot that never left memory — serially, chunk by chunk, or
    //    in parallel (every path consumes the same chunked sampler).
    let direct = snapshot.sample(42, 100);
    let served = loaded.sample(42, 100);
    assert_eq!(direct.as_slice(), served.as_slice());
    let chunked: Vec<f64> = loaded
        .sample_chunks(42, 100, 24)
        .flat_map(|chunk| chunk.as_slice().to_vec())
        .collect();
    assert_eq!(direct.as_slice(), chunked.as_slice());
    assert_eq!(
        direct.as_slice(),
        loaded.sample_parallel(42, 100).as_slice()
    );
    println!("round trip verified: save -> load -> sample is bit-identical");

    // 6. Labelled serving: original-unit features with the requested label
    //    mix, straight from the snapshot.
    let (features, labels) = loaded
        .synthesize_labelled(9, &[120, 40])
        .expect("labelled synthesis");
    println!(
        "labelled release: {} rows, {} positive",
        features.rows(),
        labels.iter().filter(|&&l| l == 1).count()
    );

    let _ = std::fs::remove_file(&path);
}
