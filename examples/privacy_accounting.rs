//! Privacy-accounting walkthrough: reproduce the paper's Theorem 4
//! composition, compare it with the zCDP + moments-accountant baseline
//! (Figure 6), and calibrate noise for a target budget.
//!
//! Run with:
//! ```text
//! cargo run --release --example privacy_accounting
//! ```

use p3gm::privacy::calibrate::{calibrate_dpem_sigma, calibrate_dpsgd_sigma};
use p3gm::privacy::rdp::{DpSgdBound, RdpAccountant};
use p3gm::privacy::zcdp::baseline_composition_epsilon;

fn main() {
    let delta = 1e-5;

    // The paper's MNIST schedule (Table IV): sigma_s = 1.42, batch 240,
    // 10 epochs over N = 63 000 training rows, eps_p = 0.1, T_e = 20, 3 MoG
    // components.
    let n = 63_000.0;
    let batch = 240.0;
    let q = batch / n;
    let t_s = (10.0 * n / batch) as usize;
    let (eps_p, t_e, sigma_e, k) = (0.1, 20, 150.0, 3);

    println!("P3GM privacy accounting (paper Table IV, MNIST row)");
    println!("  T_s = {t_s}, q = {q:.5}, sigma_s = 1.42, eps_p = {eps_p}, T_e = {t_e}");

    let spec = RdpAccountant::p3gm_total(eps_p, t_e, sigma_e, k, t_s, q, 1.42, delta)
        .expect("valid parameters");
    println!(
        "  Theorem 4 (RDP) total: epsilon = {:.3} at order alpha = {:.1} (paper reports 1.0)",
        spec.epsilon, spec.optimal_order
    );

    let baseline = baseline_composition_epsilon(eps_p, t_e, sigma_e, k, t_s, q, 1.42, delta)
        .expect("valid parameters");
    println!("  zCDP + MA baseline total: epsilon = {baseline:.3} (Figure 6's comparison)");

    // The tighter sampled-Gaussian RDP bound most production accountants use.
    let mut acc = RdpAccountant::default();
    acc.add_pure_dp(eps_p).unwrap();
    acc.add_dp_em(t_e, sigma_e, k).unwrap();
    acc.add_dp_sgd(t_s, q, 1.42, DpSgdBound::SampledGaussian)
        .unwrap();
    println!(
        "  sampled-Gaussian RDP ablation: epsilon = {:.3}",
        acc.to_dp(delta).unwrap().epsilon
    );

    // Inverse problem: how much noise do we need for a smaller budget?
    println!("\nnoise calibration for smaller budgets (same schedule):");
    for target in [0.5, 1.0, 2.0, 5.0] {
        let sigma_e_cal = calibrate_dpem_sigma(0.2 * target, delta, t_e, k).unwrap();
        let sigma_s_cal = calibrate_dpsgd_sigma(
            target,
            delta,
            eps_p.min(0.1 * target),
            t_e,
            sigma_e_cal,
            k,
            t_s,
            q,
        )
        .unwrap();
        println!(
            "  target epsilon = {target:<4}  ->  sigma_e = {sigma_e_cal:7.1}, sigma_s = {sigma_s_cal:5.2}"
        );
    }
    println!("\nSmaller budgets need larger noise multipliers, which is exactly the utility/privacy\ntrade-off swept in the paper's Figure 4.");
}
