//! Image-synthesis scenario (the paper's Figure 2): train VAE, DP-VAE,
//! DP-GM and P3GM on MNIST-like images and print ASCII sample sheets plus
//! fidelity/diversity statistics.
//!
//! Run with:
//! ```text
//! cargo run --release --example mnist_synthesis
//! ```

use p3gm::eval::common::GenerativeKind;
use p3gm::eval::fig2;
use p3gm::eval::Scale;

fn main() {
    // Smoke scale keeps the example under a minute; use Scale::Paper for the
    // configuration the benchmark harness reports in EXPERIMENTS.md.
    let report = fig2::run_models(
        Scale::Smoke,
        &[
            GenerativeKind::Vae,
            GenerativeKind::DpVae,
            GenerativeKind::DpGm,
            GenerativeKind::P3gm,
        ],
    );
    println!("{}", report.to_text());
    println!(
        "Reading the numbers: lower fidelity = samples closer to real digits;\n\
         higher diversity = less mode collapse. The paper's claim is that P3GM\n\
         achieves both at (1, 1e-5)-DP, unlike DP-VAE (noisy) and DP-GM (collapsed)."
    );
}
