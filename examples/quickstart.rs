//! Quickstart: train P3GM on a tabular dataset under (1, 1e-5)-DP and
//! release differentially private synthetic data.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use p3gm::classifiers::suite::evaluate_binary_suite;
use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::synthesis::{synthesize_labelled, LabelledSynthesizer};
use p3gm::datasets::tabular::adult_like;
use p3gm::privacy::calibrate::calibrate_dpsgd_sigma;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A sensitive dataset the curator wants to share (synthetic stand-in
    //    for the UCI Adult census data: 15 features, ~24% positive labels).
    let dataset = adult_like(&mut rng, 2000);
    let split = dataset.train_test_split(&mut rng, 0.2);
    println!(
        "dataset: {} ({} train rows, {} test rows, {} features, {:.1}% positive)",
        dataset.name,
        split.train.n_samples(),
        split.test.n_samples(),
        dataset.n_features(),
        100.0 * dataset.positive_fraction()
    );

    // 2. Prepare the data: scale features into [0,1] and append one-hot
    //    labels so the generated rows carry a label (paper §IV-E).
    let (synthesizer, prepared) = LabelledSynthesizer::prepare(
        &split.train.features,
        &split.train.labels,
        split.train.n_classes,
    )
    .expect("prepare training data");

    // 3. Configure P3GM for a total budget of (1, 1e-5)-DP: DP-PCA gets
    //    eps_p = 0.1 and the DP-SGD noise multiplier is calibrated with the
    //    paper's Theorem 4 accounting.
    let mut config = PgmConfig {
        latent_dim: 8,
        hidden_dim: 48,
        epochs: 6,
        batch_size: 64,
        ..PgmConfig::default()
    };
    config.sigma_s = calibrate_dpsgd_sigma(
        1.0,
        config.delta,
        config.eps_p,
        config.em_iterations,
        config.sigma_e,
        config.mog_components,
        config.sgd_steps(prepared.rows()),
        config.sampling_probability(prepared.rows()),
    )
    .expect("calibrate noise for epsilon = 1");
    println!("calibrated DP-SGD noise multiplier: {:.3}", config.sigma_s);

    // 4. Two-phase training (Encoding Phase: DP-PCA + DP-EM; Decoding Phase:
    //    DP-SGD on the ELBO with the MoG prior).
    let (model, history) =
        PhasedGenerativeModel::fit(&mut rng, &prepared, config).expect("train P3GM");
    let spec = model.training_privacy_spec().expect("private model");
    println!(
        "trained for {} epochs; final reconstruction loss {:.3}; privacy = ({:.3}, {:.0e})-DP",
        history.len(),
        history
            .last()
            .map(|e| e.reconstruction_loss)
            .unwrap_or(f64::NAN),
        spec.epsilon,
        spec.delta
    );

    // 5. Release synthetic data with the same label ratio as the real data.
    let counts = split.train.matched_label_counts(1500);
    let (synth_x, synth_y) =
        synthesize_labelled(&model, &synthesizer, &mut rng, &counts).expect("synthesize");
    println!("released {} synthetic rows", synth_x.rows());

    // 6. A third party trains classifiers on the synthetic data and applies
    //    them to real test data — the paper's utility protocol.
    let report =
        evaluate_binary_suite(&synth_x, &synth_y, &split.test.features, &split.test.labels);
    println!("\ntrain-on-synthetic / test-on-real performance:");
    for (kind, scores) in &report.per_classifier {
        println!(
            "  {:<22} AUROC {:.4}   AUPRC {:.4}",
            kind.name(),
            scores.auroc,
            scores.auprc
        );
    }
    println!(
        "  {:<22} AUROC {:.4}   AUPRC {:.4}",
        "mean",
        report.mean_auroc(),
        report.mean_auprc()
    );
}
