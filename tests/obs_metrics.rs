//! Observability-contract tests for `p3gm-obs`:
//!
//! * the Prometheus text exposition round-trips through a hand-rolled
//!   parser (names, escaped label values, finite and non-finite values),
//! * histogram renders keep their invariants — cumulative buckets are
//!   monotone and the `+Inf` bucket equals `_count`,
//! * training telemetry is deterministic: the same fit under
//!   `P3GM_THREADS=1` and `P3GM_THREADS=4` produces identical
//!   [`TrainReport`]s and byte-identical metric renders.

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::TrainReport;
use p3gm::linalg::Matrix;
use p3gm::obs::{escape_label_value, format_value, Histogram, MetricsRegistry};
use p3gm::parallel::with_threads;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One parsed sample: `(metric_name, sorted label pairs) -> value`.
type Samples = BTreeMap<(String, Vec<(String, String)>), f64>;

/// A hand-rolled Prometheus text-format parser: the test's independent
/// implementation of the spec that renders must round-trip through.
/// Returns `None` on any malformed line, so a bad render fails loudly.
fn parse_exposition(text: &str) -> Option<Samples> {
    let mut out = Samples::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_end, mut labels, rest_idx) = match line.find(['{', ' ']) {
            Some(i) if line.as_bytes()[i] == b' ' => (i, Vec::new(), i + 1),
            Some(i) => {
                let (labels, consumed) = parse_labels(&line[i + 1..])?;
                // consumed ends just past '}'; a single space separates
                // the label set from the value.
                let rest = i + 1 + consumed;
                if line.as_bytes().get(rest) != Some(&b' ') {
                    return None;
                }
                (i, labels, rest + 1)
            }
            None => return None,
        };
        let name = &line[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return None;
        }
        let value = parse_value(&line[rest_idx..])?;
        labels.sort();
        out.insert((name.to_string(), labels), value);
    }
    Some(out)
}

/// Parses `key="value",...}` starting just past the `{`. Returns the
/// pairs and the number of bytes consumed (including the closing `}`).
fn parse_labels(s: &str) -> Option<(Vec<(String, String)>, usize)> {
    let mut labels = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    loop {
        if bytes.get(i) == Some(&b'}') {
            return Some((labels, i + 1));
        }
        let eq = s[i..].find('=')? + i;
        let key = s[i..eq].trim_start_matches(',').to_string();
        if bytes.get(eq + 1) != Some(&b'"') {
            return None;
        }
        let mut value = String::new();
        let mut j = eq + 2;
        loop {
            match bytes.get(j)? {
                b'"' => break,
                b'\\' => {
                    value.push(match bytes.get(j + 1)? {
                        b'\\' => '\\',
                        b'"' => '"',
                        b'n' => '\n',
                        _ => return None,
                    });
                    j += 2;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole char.
                    let c = s[j..].chars().next()?;
                    value.push(c);
                    j += c.len_utf8();
                }
            }
        }
        labels.push((key, value));
        i = j + 1;
    }
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Looks up one sample by name and unsorted label pairs.
fn sample(samples: &Samples, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    samples.get(&(name.to_string(), key)).copied()
}

#[test]
fn escaping_round_trips_the_three_special_characters() {
    let raw = "a\\b\"c\nd";
    assert_eq!(escape_label_value(raw), "a\\\\b\\\"c\\nd");
    let registry = MetricsRegistry::new();
    registry
        .counter("p3gm_test_total", "Escaping.", &[("model", raw)])
        .add(3);
    let samples = parse_exposition(&registry.render()).expect("render must parse");
    assert_eq!(
        sample(&samples, "p3gm_test_total", &[("model", raw)]),
        Some(3.0)
    );
}

#[test]
fn non_finite_gauge_values_render_in_prometheus_spelling() {
    assert_eq!(format_value(f64::INFINITY), "+Inf");
    assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
    assert_eq!(format_value(f64::NAN), "NaN");
    let registry = MetricsRegistry::new();
    registry
        .gauge("p3gm_test_gauge", "Inf.", &[])
        .set(f64::INFINITY);
    let samples = parse_exposition(&registry.render()).unwrap();
    assert_eq!(
        sample(&samples, "p3gm_test_gauge", &[]),
        Some(f64::INFINITY)
    );
}

/// Strategy: a plausible metric-name suffix (fixed length; the vendored
/// proptest generates fixed-size vectors).
fn name_strategy() -> impl Strategy<Value = String> {
    collection::vec(0usize..27, 8).prop_map(|ix| {
        let mut name = String::from("p3gm_t_");
        for i in ix {
            name.push(b"abcdefghijklmnopqrstuvwxyz_"[i] as char);
        }
        name
    })
}

/// Strategy: an arbitrary label value drawn from a charset that leans on
/// the escape-relevant characters and includes multi-byte UTF-8.
fn label_value_strategy() -> impl Strategy<Value = String> {
    const CHARSET: &[char] = &[
        '\\', '"', '\n', 'é', 'a', 'Z', '0', ' ', '{', '}', ',', '=', '-', '~', '!', '/',
    ];
    collection::vec(0usize..CHARSET.len(), 12).prop_map(|ix| {
        let mut value: String = ix.into_iter().map(|i| CHARSET[i]).collect();
        // Vary the effective length without a variable-length generator.
        let keep = value.chars().take_while(|&c| c != '~').collect::<String>();
        if !keep.is_empty() {
            value = keep;
        }
        value
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counters and gauges round-trip through the independent parser:
    /// same name, same (unescaped) label values, same value.
    #[test]
    fn exposition_round_trips_counters_and_gauges(
        name in name_strategy(),
        label in label_value_strategy(),
        count in 0u64..u64::MAX / 2,
        gauge in -1e12f64..1e12,
    ) {
        let registry = MetricsRegistry::new();
        registry
            .counter(&format!("{name}_total"), "Round-trip counter.", &[("v", &label)])
            .add(count);
        registry
            .gauge(&format!("{name}_gauge"), "Round-trip gauge.", &[("v", &label)])
            .set(gauge);
        let samples = parse_exposition(&registry.render()).expect("render must parse");
        prop_assert_eq!(
            sample(&samples, &format!("{name}_total"), &[("v", &label)]),
            Some(count as f64)
        );
        let got = sample(&samples, &format!("{name}_gauge"), &[("v", &label)])
            .expect("gauge sample present");
        // format_value prints the shortest round-trip form, so the parse
        // recovers the exact bit pattern.
        prop_assert_eq!(got.to_bits(), gauge.to_bits());
    }

    /// Histogram renders keep the spec's invariants: cumulative buckets
    /// are monotone non-decreasing, the `+Inf` bucket equals `_count`,
    /// and `_sum` matches the fold of the observations.
    #[test]
    fn histogram_buckets_are_monotone_and_inf_equals_count(
        raw_bounds in collection::vec(-100.0f64..100.0, 7),
        bounds_len in 1usize..8,
        raw_observations in collection::vec(-150.0f64..150.0, 64),
        obs_len in 0usize..65,
    ) {
        let bounds = &raw_bounds[..bounds_len.min(raw_bounds.len())];
        let observations = &raw_observations[..obs_len.min(raw_observations.len())];
        let histogram = Histogram::new(bounds);
        let mut expected_sum = 0.0;
        for &v in observations {
            histogram.observe(v);
            expected_sum += v;
        }
        let cumulative = histogram.cumulative_buckets();
        let mut previous = 0;
        for (i, (bound, cum)) in cumulative.iter().enumerate() {
            prop_assert!(*cum >= previous, "bucket {i} ({bound}) decreased");
            previous = *cum;
        }
        let (last_bound, last_cum) = *cumulative.last().expect("+Inf bucket always present");
        prop_assert!(last_bound.is_infinite());
        prop_assert_eq!(last_cum, observations.len() as u64);
        prop_assert_eq!(histogram.count(), observations.len() as u64);
        prop_assert_eq!(histogram.sum().to_bits(), expected_sum.to_bits());

        // The same invariants must survive render + parse.
        let registry = MetricsRegistry::new();
        let rendered = registry.histogram("p3gm_t_hist", "Invariants.", bounds, &[]);
        for &v in observations {
            rendered.observe(v);
        }
        let samples = parse_exposition(&registry.render()).expect("render must parse");
        let count = sample(&samples, "p3gm_t_hist_count", &[]).expect("_count present");
        let inf_bucket = sample(&samples, "p3gm_t_hist_bucket", &[("le", "+Inf")])
            .expect("+Inf bucket present");
        prop_assert_eq!(count, observations.len() as f64);
        prop_assert_eq!(inf_bucket, count);
    }
}

/// One private fit on a fixed seed under `threads` workers, reported
/// with no injected timer (the deterministic norm).
fn fit_report(threads: usize) -> (TrainReport, String) {
    use rand::SeedableRng;
    let data = Matrix::from_fn(48, 5, |i, j| {
        0.5 + 0.4 * (((i * 5 + j) as f64) * 0.37).sin()
    });
    let config = PgmConfig {
        latent_dim: 2,
        hidden_dim: 8,
        mog_components: 2,
        epochs: 2,
        batch_size: 16,
        em_iterations: 3,
        private: true,
        ..PgmConfig::default()
    };
    let report = with_threads(threads, || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (_, _, report) =
            PhasedGenerativeModel::fit_with_report(&mut rng, &data, config, None).unwrap();
        report
    });
    let registry = MetricsRegistry::new();
    report.record_to(&registry);
    (report, registry.render())
}

#[test]
fn train_report_is_identical_across_thread_counts() {
    let (reference, reference_render) = fit_report(1);
    // The report must have actually observed the private fit.
    assert!(reference.dp_sgd_steps > 0);
    assert!(reference.em_iterations > 0);
    assert!(reference.clip_measured_examples > 0);
    assert!(reference.phase_nanos.is_empty(), "no timer was injected");
    for threads in [2, 4] {
        let (report, render) = fit_report(threads);
        assert_eq!(
            report, reference,
            "TrainReport diverged at {threads} threads"
        );
        assert_eq!(
            render, reference_render,
            "render diverged at {threads} threads"
        );
    }
}
