//! Property-based tests (proptest) on the core numerical invariants that
//! the P3GM pipeline relies on across crates.

use p3gm::classifiers::metrics::{auprc, auroc};
use p3gm::linalg::{stats, Cholesky, Matrix, SymmetricEigen};
use p3gm::mixture::Gmm;
use p3gm::nn::activation::Activation;
use p3gm::nn::loss::{bce_with_logits, kl_diag_gaussian_standard};
use p3gm::preprocess::pca::Pca;
use p3gm::preprocess::scaler::MinMaxScaler;
use p3gm::privacy::moments::{ma_dp_em, ma_dp_sgd, rdp_sampled_gaussian};
use p3gm::privacy::rdp::RdpAccountant;
use p3gm::privacy::zcdp::ZcdpAccountant;
use proptest::prelude::*;

/// Strategy: a small symmetric positive-definite matrix built as B·Bᵀ + c·I.
fn spd_matrix(dim: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0..1.0f64, dim * dim).prop_map(move |values| {
        let b = Matrix::from_vec(dim, dim, values).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(0.5);
        a
    })
}

/// Strategy: a data matrix with values in a bounded range.
fn data_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |values| Matrix::from_vec(rows, cols, values).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---------- linear algebra ----------

    #[test]
    fn eigen_reconstruction_and_trace(m in spd_matrix(4)) {
        let eig = SymmetricEigen::new(&m).unwrap();
        // Trace is preserved and all eigenvalues of an SPD matrix are positive.
        let trace: f64 = eig.eigenvalues.iter().sum();
        prop_assert!((trace - m.trace()).abs() < 1e-6 * m.trace().abs().max(1.0));
        prop_assert!(eig.eigenvalues.iter().all(|&l| l > 0.0));
        prop_assert!(eig.reconstruct().approx_eq(&m, 1e-6));
    }

    #[test]
    fn cholesky_solve_is_inverse(m in spd_matrix(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let chol = Cholesky::new(&m).unwrap();
        let x = chol.solve(&b).unwrap();
        let back = m.matvec(&x).unwrap();
        for (got, want) in back.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6);
        }
        // The quadratic form of any non-zero vector is positive.
        let q = chol.quadratic_form(&b).unwrap();
        prop_assert!(q >= -1e-12);
    }

    #[test]
    fn covariance_matrices_are_psd(data in data_matrix(12, 4)) {
        let cov = stats::covariance_matrix(&data, None).unwrap();
        let eig = SymmetricEigen::new(&cov).unwrap();
        prop_assert!(eig.eigenvalues.iter().all(|&l| l > -1e-9));
    }

    // ---------- preprocessing ----------

    #[test]
    fn pca_reconstruction_error_never_increases_with_components(data in data_matrix(16, 5)) {
        let e2 = Pca::fit(&data, 2).unwrap().reconstruction_error(&data).unwrap();
        let e4 = Pca::fit(&data, 4).unwrap().reconstruction_error(&data).unwrap();
        prop_assert!(e4 <= e2 + 1e-9);
    }

    #[test]
    fn minmax_scaler_bounds_and_roundtrip(data in data_matrix(10, 3)) {
        let scaler = MinMaxScaler::fit(&data).unwrap();
        let t = scaler.transform(&data).unwrap();
        prop_assert!(t.as_slice().iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
        let back = scaler.inverse_transform(&t).unwrap();
        // Non-constant columns round-trip exactly.
        let (mins, maxs) = stats::column_min_max(&data).unwrap();
        for j in 0..data.cols() {
            if maxs[j] > mins[j] {
                for i in 0..data.rows() {
                    prop_assert!((back.get(i, j) - data.get(i, j)).abs() < 1e-9);
                }
            }
        }
    }

    // ---------- privacy accounting ----------

    #[test]
    fn moments_bounds_are_nonnegative_and_monotone_in_noise(
        sigma in 0.5..8.0f64,
        q in 1e-4..0.2f64,
        lambda in 1u32..16u32,
    ) {
        let a = ma_dp_sgd(lambda, q, sigma);
        let b = ma_dp_sgd(lambda, q, sigma * 2.0);
        prop_assert!(a >= 0.0);
        prop_assert!(b <= a + 1e-12);
        let em = ma_dp_em(f64::from(lambda), sigma, 3);
        prop_assert!(em >= 0.0);
    }

    #[test]
    fn rdp_epsilon_decreases_with_noise_and_increases_with_steps(
        sigma in 0.8..6.0f64,
        steps in 10usize..200usize,
    ) {
        let q = 0.02;
        let delta = 1e-5;
        let eps = RdpAccountant::p3gm_total(0.1, 5, 100.0, 3, steps, q, sigma, delta).unwrap().epsilon;
        let eps_more_noise = RdpAccountant::p3gm_total(0.1, 5, 100.0, 3, steps, q, sigma * 1.5, delta).unwrap().epsilon;
        let eps_more_steps = RdpAccountant::p3gm_total(0.1, 5, 100.0, 3, steps * 2, q, sigma, delta).unwrap().epsilon;
        prop_assert!(eps.is_finite() && eps > 0.0);
        prop_assert!(eps_more_noise <= eps + 1e-9);
        prop_assert!(eps_more_steps >= eps - 1e-9);
    }

    #[test]
    fn sampled_gaussian_rdp_is_sane(
        sigma in 1.0..6.0f64,
        q in 1e-3..0.1f64,
        alpha in 2u32..24u32,
    ) {
        // Both per-step bounds are non-negative; the sampled-Gaussian RDP is
        // monotone in the sampling rate and in the noise (the pointwise
        // comparison against paper Eq. (4) only holds in the composition
        // regime, which the unit tests in p3gm-privacy cover).
        let eq4 = ma_dp_sgd(alpha - 1, q, sigma) / f64::from(alpha - 1);
        let sg = rdp_sampled_gaussian(alpha, q, sigma);
        prop_assert!(eq4 >= 0.0);
        prop_assert!(sg >= 0.0);
        prop_assert!(rdp_sampled_gaussian(alpha, (q * 1.5).min(1.0), sigma) >= sg - 1e-15);
        prop_assert!(rdp_sampled_gaussian(alpha, q, sigma * 1.5) <= sg + 1e-15);
    }

    #[test]
    fn laplace_streams_are_always_finite(seed in 0u64..1_000_000u64, scale in 1e-3..100.0f64) {
        // Regression for the u = -0.5 boundary: the inverse-CDF sampler
        // used to return -inf on a boundary draw; every sample from any
        // seeded stream must now be finite.
        use p3gm::privacy::sampling::laplace;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..2_000 {
            let v = laplace(&mut rng, scale);
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn dp_sgd_accounting_is_sound_at_fractional_low_orders(
        sigma in 0.8..4.0f64,
        q in 1e-3..0.5f64,
        steps in 1usize..500usize,
    ) {
        // Regression for the floor(α−1) bug: DP-SGD must carry a strictly
        // positive RDP cost at every tracked order, including α < 3.
        let mut acc = RdpAccountant::default();
        acc.add_dp_sgd(steps, q, sigma, p3gm::privacy::rdp::DpSgdBound::PaperEq4).unwrap();
        for (&order, &eps) in acc.orders().iter().zip(acc.rdp_epsilons().iter()) {
            prop_assert!(eps > 0.0, "order {} accounted free", order);
        }
    }

    #[test]
    fn zcdp_composition_is_additive(rho1 in 0.001..1.0f64, rho2 in 0.001..1.0f64) {
        let mut a = ZcdpAccountant::new();
        a.add_rho(rho1).unwrap();
        a.add_rho(rho2).unwrap();
        prop_assert!((a.rho() - (rho1 + rho2)).abs() < 1e-12);
        // Conversion is monotone in rho.
        let mut b = ZcdpAccountant::new();
        b.add_rho(rho1).unwrap();
        prop_assert!(a.to_dp(1e-5).unwrap() >= b.to_dp(1e-5).unwrap());
    }

    // ---------- neural-network losses ----------

    #[test]
    fn activations_match_finite_differences(x in -3.0..3.0f64) {
        let h = 1e-6;
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Tanh, Activation::Softplus] {
            // Skip the ReLU kink where the derivative is not defined.
            if act == Activation::Relu && x.abs() < 1e-4 {
                continue;
            }
            let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
            prop_assert!((numeric - act.derivative(x)).abs() < 1e-4);
        }
    }

    #[test]
    fn bce_is_nonnegative_and_kl_is_nonnegative(
        logit in -10.0..10.0f64,
        target in 0.0..1.0f64,
        mu in -3.0..3.0f64,
        logvar in -3.0..3.0f64,
    ) {
        let (loss, _) = bce_with_logits(&[logit], &[target]);
        prop_assert!(loss >= -1e-12);
        let (kl, _, _) = kl_diag_gaussian_standard(&[mu], &[logvar]);
        prop_assert!(kl >= -1e-12);
    }

    // ---------- mixtures ----------

    #[test]
    fn gmm_responsibilities_are_a_distribution(
        x in -5.0..5.0f64,
        y in -5.0..5.0f64,
        w in 0.1..0.9f64,
    ) {
        let gmm = Gmm::isotropic(
            vec![w, 1.0 - w],
            p3gm::linalg::Matrix::from_rows(&[vec![-1.0, 0.0], vec![1.5, 0.5]]).unwrap(),
            0.7,
        ).unwrap();
        let r = gmm.responsibilities(&[x, y]);
        prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(r.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The Hershey–Olsen KL to the mixture is non-negative within numerical slack.
        let (kl, _, _) = gmm.kl_diag_to_mixture(&[x, y], &[0.0, 0.0]);
        prop_assert!(kl > -1e-6);
    }

    // ---------- metrics ----------

    #[test]
    fn auroc_is_invariant_to_monotone_transforms(
        scores in proptest::collection::vec(0.0..1.0f64, 12),
        flips in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let labels: Vec<usize> = flips.iter().map(|&b| usize::from(b)).collect();
        let a = auroc(&scores, &labels);
        let transformed: Vec<f64> = scores.iter().map(|s| s * 7.0 + 2.0).collect();
        let b = auroc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&a));
        let ap = auprc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&ap));
    }
}
