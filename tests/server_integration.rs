//! Integration tests for the `p3gm-server` HTTP surface: end-to-end
//! sampling over a real TCP socket is bit-identical to the in-process
//! snapshot (whether streamed with chunked Transfer-Encoding or
//! buffered), keep-alive connections serve multiple requests with the
//! same bytes as fresh connections, stalled clients get typed 408s
//! instead of pinning workers, malformed/hostile input gets typed
//! 4xx/5xx responses with zero panics, hot reload swaps models without
//! dropping the service, and the privacy budget ledger charges exactly
//! once per streamed response — even when the client aborts mid-stream —
//! and survives a server restart.

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::SynthesisSnapshot;
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::core::{DecoderLoss, VarianceMode};
use p3gm::linalg::Matrix;
use p3gm::privacy::sampling;
use p3gm::server::http::{
    read_request, HttpError, Limits, Method, RequestReader, Response, ResponseReader,
};
use p3gm::server::{json, start, ServerConfig, ServerHandle};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// Trains the shared test model once (the expensive fixture).
fn trained_snapshot() -> &'static SynthesisSnapshot {
    static SNAPSHOT: OnceLock<SynthesisSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(404);
        let rows: Vec<Vec<f64>> = (0..90)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..6)
                    .map(|j| {
                        let base = if (j < 3) == hot { 0.85 } else { 0.15 };
                        (base + sampling::normal(&mut rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..90).map(|i| i % 2).collect();
        let features = Matrix::from_rows(&rows).unwrap();
        let (synth, prepared) = LabelledSynthesizer::prepare(&features, &labels, 2).unwrap();
        let config = PgmConfig {
            latent_dim: 3,
            hidden_dim: 12,
            mog_components: 2,
            epochs: 3,
            batch_size: 16,
            learning_rate: 5e-3,
            clip_norm: 1.0,
            private: true,
            eps_p: 0.5,
            sigma_e: 50.0,
            em_iterations: 3,
            sigma_s: 1.0,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        };
        let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).unwrap();
        SynthesisSnapshot::capture(model).with_synthesizer(synth)
    })
}

/// A fresh model directory containing the shared snapshot under `name`.
fn model_dir(test: &str, names: &[&str]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p3gm_server_it_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for name in names {
        std::fs::write(
            dir.join(format!("{name}.snapshot")),
            trained_snapshot().to_bytes(),
        )
        .unwrap();
    }
    dir
}

fn start_server(dir: &PathBuf, threads: usize, budget: Option<f64>) -> ServerHandle {
    start(
        ServerConfig::builder(dir)
            .threads(threads)
            .budget_epsilon(budget)
            .build(),
    )
    .unwrap()
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

/// One-write request send (multiple small writes on a reused connection
/// would stall on Nagle + delayed ACK).
fn write_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
}

/// Minimal framed HTTP client: one fresh connection, one request,
/// de-chunks a streamed body; returns (status, head text, body text).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = connect(addr);
    write_request(&mut stream, method, path, body);
    let response = ResponseReader::new(stream).next_response().unwrap();
    unpack(response)
}

fn unpack(response: p3gm::server::http::ClientResponse) -> (u16, String, String) {
    let head: String = response
        .headers
        .iter()
        .map(|(n, v)| format!("{n}: {v}\r\n"))
        .collect();
    (
        response.status,
        head,
        String::from_utf8(response.body).unwrap(),
    )
}

/// Writes raw bytes (possibly malformed on purpose) and reads one framed
/// response (status 0 when the server closed without answering).
fn raw_request(addr: SocketAddr, bytes: &[u8]) -> (u16, String, String) {
    let mut stream = connect(addr);
    // Ignore write errors: the server may legitimately reject and close
    // before the full (hostile) request is sent.
    let _ = stream.write_all(bytes);
    match ResponseReader::new(stream).next_response() {
        Ok(response) => unpack(response),
        Err(_) => (0, String::new(), String::new()),
    }
}

#[test]
fn http_sampling_is_bit_identical_to_in_process_under_concurrency() {
    let dir = model_dir("concurrency", &["m"]);
    let server = start_server(&dir, 4, None);
    let addr = server.addr();

    // 4 concurrent clients, same (model, seed, n).
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let (status, _, body) =
                        request(addr, "POST", "/models/m/sample", r#"{"seed": 42, "n": 25}"#);
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "concurrent responses must be identical");
    }

    // The served rows are bit-identical to the in-process snapshot.
    let expected = trained_snapshot().sample(42, 25);
    let parsed = json::parse(&bodies[0]).unwrap();
    let rows = parsed.get("rows").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), 25);
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_arr().unwrap();
        assert_eq!(row.len(), expected.cols());
        for (j, v) in row.iter().enumerate() {
            assert_eq!(
                v.as_f64().unwrap().to_bits(),
                expected.get(i, j).to_bits(),
                "row {i} col {j}"
            );
        }
    }

    // The stamp headers ride along and are constant.
    let (_, head, _) = request(addr, "POST", "/models/m/sample", r#"{"seed": 42, "n": 25}"#);
    assert!(head.contains("x-p3gm-privacy: ("), "{head}");
    assert!(head.contains("x-p3gm-epsilon-spent: "), "{head}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keep_alive_connection_serves_many_requests_with_fresh_connection_bytes() {
    let dir = model_dir("keepalive", &["m"]);
    let server = start_server(&dir, 2, None);
    let addr = server.addr();

    // Two sampling requests and a discovery request ride one connection.
    let mut stream = connect(addr);
    write_request(
        &mut stream,
        "POST",
        "/models/m/sample",
        r#"{"seed": 5, "n": 30}"#,
    );
    let mut client = ResponseReader::new(stream.try_clone().unwrap());
    let first = client.next_response().unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("connection"), Some("keep-alive"));
    assert!(first.chunked, "HTTP/1.1 sampling responses stream");
    write_request(
        &mut stream,
        "POST",
        "/models/m/sample",
        r#"{"seed": 6, "n": 10}"#,
    );
    let second = client.next_response().unwrap();
    assert_eq!(second.status, 200);
    write_request(&mut stream, "GET", "/healthz", "");
    let third = client.next_response().unwrap();
    assert_eq!(third.status, 200);

    // Byte-identical to the same requests on fresh connections.
    let (_, _, fresh_first) = request(addr, "POST", "/models/m/sample", r#"{"seed": 5, "n": 30}"#);
    let (_, _, fresh_second) = request(addr, "POST", "/models/m/sample", r#"{"seed": 6, "n": 10}"#);
    assert_eq!(String::from_utf8(first.body).unwrap(), fresh_first);
    assert_eq!(String::from_utf8(second.body).unwrap(), fresh_second);

    // An explicit Connection: close is honored.
    let mut stream = connect(addr);
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut client = ResponseReader::new(stream.try_clone().unwrap());
    let resp = client.next_response().unwrap();
    assert_eq!(resp.header("connection"), Some("close"));
    // The server closed: the next read sees EOF.
    let mut probe = [0u8; 1];
    assert_eq!(stream.read(&mut probe).unwrap_or(0), 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn requests_per_connection_are_bounded() {
    let dir = model_dir("reqcap", &["m"]);
    let server = start(
        ServerConfig::builder(&dir)
            .max_requests_per_connection(2)
            .build(),
    )
    .unwrap();
    let addr = server.addr();

    let mut stream = connect(addr);
    let mut client = ResponseReader::new(stream.try_clone().unwrap());
    write_request(&mut stream, "GET", "/healthz", "");
    let first = client.next_response().unwrap();
    assert_eq!(first.header("connection"), Some("keep-alive"));
    write_request(&mut stream, "GET", "/healthz", "");
    let second = client.next_response().unwrap();
    assert_eq!(
        second.header("connection"),
        Some("close"),
        "the final allowed request must announce the close"
    );
    let mut probe = [0u8; 1];
    assert_eq!(stream.read(&mut probe).unwrap_or(0), 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_and_trickling_clients_get_a_typed_408() {
    let dir = model_dir("slowloris", &["m"]);
    let server = start(
        ServerConfig::builder(&dir)
            .request_read_timeout(Duration::from_millis(300))
            .keep_alive_timeout(Duration::from_secs(5))
            .build(),
    )
    .unwrap();
    let addr = server.addr();

    // A partial request line followed by silence: the read deadline
    // expires and the worker answers 408 instead of blocking forever.
    let mut stream = connect(addr);
    stream.write_all(b"GET /mod").unwrap();
    let resp = ResponseReader::new(stream).next_response().unwrap();
    assert_eq!(resp.status, 408);
    assert_eq!(resp.header("connection"), Some("close"));

    // Trickling one byte at a time does not reset the deadline.
    let mut stream = connect(addr);
    let head = b"GET /healthz HTTP/1.1\r\n";
    let start_t = std::time::Instant::now();
    for &b in head.iter() {
        if stream.write_all(&[b]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
        if start_t.elapsed() > Duration::from_secs(2) {
            break;
        }
    }
    let resp = ResponseReader::new(stream).next_response().unwrap();
    assert_eq!(resp.status, 408, "trickled head must hit the deadline");

    // The server still serves normal requests afterwards.
    let (status, _, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connections_are_closed_silently() {
    let dir = model_dir("idle", &["m"]);
    let server = start(
        ServerConfig::builder(&dir)
            .keep_alive_timeout(Duration::from_millis(200))
            .build(),
    )
    .unwrap();
    let addr = server.addr();

    // A connection that never sends a byte is dropped without a
    // response once the idle window passes.
    let mut stream = connect(addr);
    let mut probe = [0u8; 1];
    assert_eq!(
        stream.read(&mut probe).unwrap_or(0),
        0,
        "idle connection must see EOF, not a response"
    );

    // A keep-alive connection idles out after its response too.
    let mut stream = connect(addr);
    write_request(&mut stream, "GET", "/healthz", "");
    let mut client = ResponseReader::new(stream.try_clone().unwrap());
    assert_eq!(client.next_response().unwrap().status, 200);
    assert_eq!(stream.read(&mut probe).unwrap_or(0), 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streamed_bodies_are_chunked_bounded_and_byte_identical_to_buffered() {
    let dir = model_dir("stream", &["m"]);
    let server = start_server(&dir, 2, None);
    let addr = server.addr();
    let n = 3000usize;
    let sample_body = format!("{{\"seed\": 8, \"n\": {n}, \"format\": \"csv\"}}");

    // Read the raw wire bytes so the chunk framing itself is visible.
    let mut stream = connect(addr);
    write!(
        stream,
        "POST /models/m/sample HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{sample_body}",
        sample_body.len()
    )
    .unwrap();
    let mut wire = Vec::new();
    stream.read_to_end(&mut wire).unwrap();
    let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
    let head = String::from_utf8_lossy(&wire[..head_end]).to_string();
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    assert!(!head.contains("Content-Length"), "{head}");

    // De-chunk by hand, recording every chunk size: the response must
    // arrive in many bounded chunks, never one full-body buffer.
    let mut rest = &wire[head_end + 4..];
    let mut body = Vec::new();
    let mut sizes = Vec::new();
    loop {
        let line_end = rest.windows(2).position(|w| w == b"\r\n").unwrap();
        let size =
            usize::from_str_radix(std::str::from_utf8(&rest[..line_end]).unwrap().trim(), 16)
                .unwrap();
        rest = &rest[line_end + 2..];
        if size == 0 {
            break;
        }
        sizes.push(size);
        body.extend_from_slice(&rest[..size]);
        assert_eq!(&rest[size..size + 2], b"\r\n");
        rest = &rest[size + 2..];
    }
    assert!(
        sizes.len() >= n / 512,
        "{n} rows must stream in >= {} chunks, got {}",
        n / 512,
        sizes.len()
    );
    let max_chunk = sizes.iter().max().unwrap();
    assert!(
        *max_chunk < body.len() / 2,
        "no chunk may approach the full body ({max_chunk} of {})",
        body.len()
    );

    // The de-chunked stream equals the buffered HTTP/1.0 body…
    let mut stream = connect(addr);
    write!(
        stream,
        "POST /models/m/sample HTTP/1.0\r\nHost: t\r\nContent-Length: {}\r\n\r\n{sample_body}",
        sample_body.len()
    )
    .unwrap();
    let buffered = ResponseReader::new(stream).next_response().unwrap();
    assert_eq!(buffered.status, 200);
    assert!(!buffered.chunked, "HTTP/1.0 must get a buffered body");
    assert_eq!(buffered.body, body);

    // …and both equal the in-process sample stream, value for value.
    let expected = trained_snapshot().sample(8, n);
    let text = String::from_utf8(body).unwrap();
    assert_eq!(text.lines().count(), n);
    for (i, line) in text.lines().enumerate().step_by(97) {
        for (j, field) in line.split(',').enumerate() {
            let v: f64 = field.parse().unwrap();
            assert_eq!(v.to_bits(), expected.get(i, j).to_bits(), "row {i}");
        }
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_stream_abort_charges_the_ledger_exactly_once() {
    let dir = model_dir("abort", &["m"]);
    let stamp = trained_snapshot().privacy_stamp().copied().unwrap();
    let server = start_server(&dir, 2, Some(100.0 * stamp.epsilon));
    let addr = server.addr();

    // Request a big streamed batch, read a token amount, then slam the
    // connection shut mid-stream.
    let body = r#"{"seed": 3, "n": 80000, "format": "csv"}"#;
    let mut stream = connect(addr);
    write_request(&mut stream, "POST", "/models/m/sample", body);
    let mut first = [0u8; 256];
    let mut got = 0;
    while got < "HTTP/1.1 200".len() {
        let n = stream.read(&mut first[got..]).unwrap();
        assert!(n > 0, "the stream must start before the abort");
        got += n;
    }
    assert!(
        String::from_utf8_lossy(&first[..got]).starts_with("HTTP/1.1 200"),
        "the charge precedes the first chunk; got {:?}",
        String::from_utf8_lossy(&first[..got])
    );
    drop(stream);

    // The aborted release still cost exactly one ε — no more (the
    // abort must not re-charge) and no less (rows were released).
    let spent = |addr| {
        let (_, _, detail) = request(addr, "GET", "/models/m", "");
        json::parse(&detail)
            .unwrap()
            .get("budget")
            .unwrap()
            .get("spent_epsilon")
            .unwrap()
            .as_f64()
            .unwrap()
    };
    // Give the worker a moment to hit the broken pipe and finish.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        spent(addr).to_bits(),
        stamp.epsilon.to_bits(),
        "mid-stream abort must leave exactly one charge"
    );

    // The worker survived the abort and a full request charges again.
    let (status, _, _) = request(addr, "POST", "/models/m/sample", r#"{"seed": 3, "n": 5}"#);
    assert_eq!(status, 200);
    assert_eq!(spent(addr).to_bits(), (2.0 * stamp.epsilon).to_bits());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn discovery_endpoints_report_geometry_and_stamp() {
    let dir = model_dir("discovery", &["m"]);
    let server = start_server(&dir, 2, None);
    let addr = server.addr();

    let (status, _, body) = request(addr, "GET", "/", "");
    assert_eq!(status, 200);
    assert!(body.contains("p3gm-server"));

    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"models\":1"));

    let snapshot = trained_snapshot();
    let stamp = snapshot.privacy_stamp().unwrap();
    let (status, _, body) = request(addr, "GET", "/models/m", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    assert_eq!(
        parsed.get("data_dim").unwrap().as_u64(),
        Some(snapshot.model().data_dim() as u64)
    );
    assert_eq!(parsed.get("n_classes").unwrap().as_u64(), Some(2));
    let privacy = parsed.get("privacy").unwrap();
    assert_eq!(
        privacy.get("epsilon").unwrap().as_f64().unwrap().to_bits(),
        stamp.epsilon.to_bits(),
        "the reported ε is the recomputed stamp, bit-exact"
    );

    let (status, _, _) = request(addr, "GET", "/models/absent", "");
    assert_eq!(status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_typed_4xx_and_the_server_survives() {
    let dir = model_dir("malformed", &["m"]);
    let server = start_server(&dir, 2, None);
    let addr = server.addr();

    // (raw bytes, expected status)
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400),
        (b"GET / HTTP/1.1 extra words\r\n\r\n".to_vec(), 400),
        (b"PUT /models HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"GET /models HTTP/2.0\r\n\r\n".to_vec(), 505),
        (b"DELETE /models/m HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"GET /nope HTTP/1.1\r\n\r\n".to_vec(), 404),
        (b"GET /models/m/sample HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"POST /models HTTP/1.1\r\n\r\n".to_vec(), 405),
        (
            b"POST /models/m/sample HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson".to_vec(),
            400,
        ),
        (
            b"POST /models/m/sample HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /models/m/sample HTTP/1.1\r\nContent-Length: 14\r\n\r\n{\"seed\":\"x\"}..".to_vec(),
            400,
        ),
        (
            b"POST /models/absent/sample HTTP/1.1\r\nContent-Length: 20\r\n\r\n{\"seed\": 1, \"n\": 10}".to_vec(),
            404,
        ),
        (
            b"POST /models/m/sample HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
        (
            b"POST /models/m/sample HTTP/1.1\r\nContent-Length: zzz\r\n\r\n".to_vec(),
            400,
        ),
        (
            format!(
                "GET /models HTTP/1.1\r\nX-Huge: {}\r\n\r\n",
                "h".repeat(64 * 1024)
            )
            .into_bytes(),
            431,
        ),
        (
            format!(
                "POST /models/m/sample HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                16 * 1024 * 1024
            )
            .into_bytes(),
            413,
        ),
    ];
    for (bytes, expected) in cases {
        let shown = String::from_utf8_lossy(&bytes[..bytes.len().min(60)]).into_owned();
        let (status, _, body) = raw_request(addr, &bytes);
        assert_eq!(status, expected, "{shown:?} -> {body}");
        assert!(body.contains("error") || expected < 400, "{shown:?}");
    }

    // Over-limit n and bad fields through the well-formed client path.
    let (status, _, _) = request(
        addr,
        "POST",
        "/models/m/sample",
        r#"{"seed": 1, "n": 999999999}"#,
    );
    assert_eq!(status, 400);
    let (status, _, _) = request(
        addr,
        "POST",
        "/models/m/sample",
        r#"{"seed": 1, "n": 5, "labels": [9, 9]}"#,
    );
    assert_eq!(status, 400);

    // After all that abuse the server still serves.
    let (status, _, _) = request(addr, "POST", "/models/m/sample", r#"{"seed": 3, "n": 2}"#);
    assert_eq!(status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_row_requests_and_csv_format_are_served() {
    let dir = model_dir("formats", &["m"]);
    let server = start_server(&dir, 2, None);
    let addr = server.addr();

    let (status, _, body) = request(addr, "POST", "/models/m/sample", r#"{"seed": 1, "n": 0}"#);
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    assert_eq!(parsed.get("n").unwrap().as_u64(), Some(0));
    assert_eq!(parsed.get("rows").unwrap().as_arr().unwrap().len(), 0);

    let csv_req = r#"{"seed": 7, "n": 4, "format": "csv"}"#;
    let (status, head, body_a) = request(addr, "POST", "/models/m/sample", csv_req);
    assert_eq!(status, 200);
    assert!(head.contains("text/csv"));
    let (_, _, body_b) = request(addr, "POST", "/models/m/sample", csv_req);
    assert_eq!(body_a, body_b, "CSV bodies are deterministic too");
    assert_eq!(body_a.lines().count(), 4);
    // Every CSV value parses back to the exact in-process sample bits.
    let expected = trained_snapshot().sample(7, 4);
    for (i, line) in body_a.lines().enumerate() {
        for (j, field) in line.split(',').enumerate() {
            let v: f64 = field.parse().unwrap();
            assert_eq!(v.to_bits(), expected.get(i, j).to_bits());
        }
    }

    // Labelled synthesis over HTTP: per-class counts, labels in the body.
    let (status, _, body) = request(
        addr,
        "POST",
        "/models/m/sample",
        r#"{"seed": 5, "labels": [3, 2]}"#,
    );
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    let labels = parsed.get("labels").unwrap().as_arr().unwrap();
    assert_eq!(labels.len(), 5);
    let ones = labels.iter().filter(|l| l.as_u64() == Some(1)).count();
    assert_eq!(ones, 2);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_exhaustion_is_429_and_survives_restart() {
    let dir = model_dir("budget", &["m"]);
    let stamp = trained_snapshot().privacy_stamp().copied().unwrap();
    let budget = Some(1.5 * stamp.epsilon);

    let server = start_server(&dir, 2, budget);
    let addr = server.addr();
    let body = r#"{"seed": 9, "n": 3}"#;
    let (status, head, _) = request(addr, "POST", "/models/m/sample", body);
    assert_eq!(status, 200);
    assert!(head.contains("x-p3gm-epsilon-remaining: "), "{head}");
    // A request that can only be answered 400 (wrong class count for a
    // 2-class model) must not burn budget: it is rejected before the
    // charge, so the next valid request still gets the remaining ε.
    let (status, _, _) = request(
        addr,
        "POST",
        "/models/m/sample",
        r#"{"seed": 9, "labels": [1, 1, 1]}"#,
    );
    assert_eq!(status, 400);
    let (_, _, detail) = request(addr, "GET", "/models/m", "");
    let spent_after_400 = json::parse(&detail)
        .unwrap()
        .get("budget")
        .unwrap()
        .get("spent_epsilon")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(
        spent_after_400.to_bits(),
        stamp.epsilon.to_bits(),
        "a 400-rejected request must not change the spent budget"
    );
    let (status, _, refusal) = request(addr, "POST", "/models/m/sample", body);
    assert_eq!(status, 429, "{refusal}");
    let parsed = json::parse(&refusal).unwrap();
    assert_eq!(
        parsed
            .get("spent_epsilon")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits(),
        stamp.epsilon.to_bits()
    );
    assert!(parsed.get("remaining_epsilon").unwrap().as_f64().unwrap() >= 0.0);
    server.shutdown();

    // Restart on the same directory: the ledger file (p3gm-store codec)
    // still holds the spend, so the very first request is refused.
    let server = start_server(&dir, 2, budget);
    let (status, _, _) = request(server.addr(), "POST", "/models/m/sample", body);
    assert_eq!(status, 429, "restart must not reset spent budget");
    // Read-only endpoints still work and report the persisted spend.
    let (status, _, body) = request(server.addr(), "GET", "/models/m", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    let spent = parsed
        .get("budget")
        .unwrap()
        .get("spent_epsilon")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(spent.to_bits(), stamp.epsilon.to_bits());
    server.shutdown();

    // A corrupt ledger file refuses to open (typed error), never resets.
    let ledger_path = dir.join("ledger.p3gm");
    let mut bytes = std::fs::read(&ledger_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&ledger_path, &bytes).unwrap();
    assert!(start(ServerConfig::builder(&dir).budget_epsilon(budget).build()).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_reload_swaps_adds_and_removes_models_without_downtime() {
    let dir = model_dir("reload", &["a"]);
    // Start with a *bare* variant of "a" (no synthesizer): detail shows
    // n_classes null.
    let bare = SynthesisSnapshot::capture(trained_snapshot().model().clone());
    std::fs::write(dir.join("a.snapshot"), bare.to_bytes()).unwrap();

    let server = start_server(&dir, 2, None);
    let addr = server.addr();
    let (_, _, body) = request(addr, "GET", "/models/a", "");
    assert_eq!(
        json::parse(&body).unwrap().get("n_classes"),
        Some(&json::Json::Null)
    );
    let (_, _, body) = request(addr, "GET", "/models", "");
    let listed = json::parse(&body).unwrap();
    assert_eq!(listed.get("models").unwrap().as_arr().unwrap().len(), 1);

    // Change "a" (now with synthesizer), add "b", add a corrupt "c".
    std::fs::write(dir.join("a.snapshot"), trained_snapshot().to_bytes()).unwrap();
    std::fs::write(dir.join("b.snapshot"), trained_snapshot().to_bytes()).unwrap();
    std::fs::write(
        dir.join("c.snapshot"),
        b"this is long enough to frame-check but is not a p3gm snapshot",
    )
    .unwrap();

    let (status, _, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 200);
    let report = json::parse(&body).unwrap();
    let loaded = report.get("loaded").unwrap().as_arr().unwrap();
    assert!(
        loaded.iter().any(|v| v.as_str() == Some("a"))
            && loaded.iter().any(|v| v.as_str() == Some("b")),
        "{body}"
    );
    assert_eq!(report.get("failed").unwrap().as_arr().unwrap().len(), 1);

    // The swapped "a" now has the synthesizer; "b" serves; "c" does not.
    let (_, _, body) = request(addr, "GET", "/models/a", "");
    assert_eq!(
        json::parse(&body)
            .unwrap()
            .get("n_classes")
            .unwrap()
            .as_u64(),
        Some(2)
    );
    let (status, _, _) = request(addr, "POST", "/models/b/sample", r#"{"seed": 1, "n": 2}"#);
    assert_eq!(status, 200);
    let (status, _, _) = request(addr, "GET", "/models/c", "");
    assert_eq!(status, 404);

    // Remove "b": a reload drops it; "a" is untouched (unchanged file).
    std::fs::remove_file(dir.join("b.snapshot")).unwrap();
    let (_, _, body) = request(addr, "POST", "/reload", "");
    let report = json::parse(&body).unwrap();
    let removed = report.get("removed").unwrap().as_arr().unwrap();
    assert!(removed.iter().any(|v| v.as_str() == Some("b")), "{body}");
    let unchanged = report.get("unchanged").unwrap().as_arr().unwrap();
    assert!(unchanged.iter().any(|v| v.as_str() == Some("a")), "{body}");
    let (status, _, _) = request(addr, "GET", "/models/b", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "POST", "/models/a/sample", r#"{"seed": 1, "n": 2}"#);
    assert_eq!(status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes into the request parser: never a panic, always
    /// either a parsed request or a typed error mapping to 4xx/5xx.
    #[test]
    fn request_parser_never_panics_on_arbitrary_bytes(
        len in 0usize..384,
        pool in proptest::collection::vec(0u32..256, 384)
    ) {
        let bytes: Vec<u8> = pool.iter().take(len).map(|&b| b as u8).collect();
        let limits = Limits::default();
        match read_request(&mut Cursor::new(bytes), &limits) {
            Ok(req) => prop_assert!(req.target.starts_with('/')),
            Err(e) => {
                let status = e.status();
                prop_assert!((400..=599).contains(&status), "{e:?} -> {status}");
            }
        }
    }

    /// Structured-ish garbage: an almost-valid head with fuzzed method,
    /// target and header bytes exercises the deeper parser branches.
    #[test]
    fn request_parser_never_panics_on_fuzzed_heads(
        method_pool in proptest::collection::vec(0u32..256, 6),
        target_pool in proptest::collection::vec(0u32..256, 12),
        header_pool in proptest::collection::vec(0u32..256, 24),
        content_length in 0u32..64
    ) {
        let method: Vec<u8> = method_pool.iter().map(|&b| b as u8).collect();
        let target: Vec<u8> = target_pool.iter().map(|&b| b as u8).collect();
        let header: Vec<u8> = header_pool.iter().map(|&b| b as u8).collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&method);
        bytes.push(b' ');
        bytes.extend_from_slice(&target);
        bytes.extend_from_slice(b" HTTP/1.1\r\n");
        bytes.extend_from_slice(&header);
        bytes.extend_from_slice(b"\r\n");
        bytes.extend_from_slice(format!("Content-Length: {content_length}\r\n\r\n").as_bytes());
        bytes.extend_from_slice(&vec![b'x'; content_length as usize]);
        match read_request(&mut Cursor::new(bytes), &Limits::default()) {
            Ok(req) => prop_assert_eq!(req.body.len(), content_length as usize),
            Err(e) => prop_assert!((400..=599).contains(&e.status())),
        }
    }

    /// Keep-alive sequences: one valid request followed by arbitrary
    /// bytes. The reader must answer the valid prefix exactly (method,
    /// target, body intact) and then never panic on the junk — every
    /// subsequent call is another parsed request or a typed error.
    #[test]
    fn request_reader_answers_the_valid_prefix_then_survives_junk(
        body_len in 0usize..48,
        junk_len in 0usize..128,
        junk_pool in proptest::collection::vec(0u32..256, 128),
        target_tail in 0u32..100_000
    ) {
        let target = format!("/models/m{target_tail}");
        let body: Vec<u8> = (0..body_len).map(|i| (i % 251) as u8).collect();
        let mut bytes = format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {body_len}\r\n\r\n"
        )
        .into_bytes();
        bytes.extend_from_slice(&body);
        bytes.extend(junk_pool.iter().take(junk_len).map(|&b| b as u8));

        let mut reader = RequestReader::new(Cursor::new(bytes));
        let limits = Limits::default();
        let first = reader.next_request(&limits).unwrap();
        prop_assert_eq!(first.method, Method::Post);
        prop_assert_eq!(first.target, target);
        prop_assert_eq!(first.body, body);
        // The junk after the valid prefix: parsed or typed-rejected,
        // never a panic, and the sequence terminates.
        for _ in 0..8 {
            match reader.next_request(&limits) {
                Ok(req) => prop_assert!(req.target.starts_with('/')),
                Err(e) => {
                    prop_assert!((400..=599).contains(&e.status()));
                    break;
                }
            }
        }
    }

    /// The chunked-encoding writer round-trips any payload under any
    /// chunk split: encode with `ResponseBody::Chunked`, de-chunk with
    /// the client reader, recover the exact bytes.
    #[test]
    fn chunked_writer_roundtrips_arbitrary_splits(
        payload_len in 0usize..512,
        payload_pool in proptest::collection::vec(0u32..256, 512),
        splits in proptest::collection::vec(1usize..96, 8),
        keep_alive_pick in 0u32..2
    ) {
        let keep_alive = keep_alive_pick == 1;
        let payload: Vec<u8> = payload_pool
            .iter()
            .take(payload_len)
            .map(|&b| b as u8)
            .collect();
        // Carve the payload into blocks at the arbitrary split sizes
        // (cycling); empty blocks legal — the writer must skip them.
        let mut blocks: Vec<Vec<u8>> = Vec::new();
        let mut rest = payload.as_slice();
        let mut i = 0;
        while !rest.is_empty() {
            let take = splits[i % splits.len()].min(rest.len());
            blocks.push(rest[..take].to_vec());
            rest = &rest[take..];
            i += 1;
            if i % 3 == 0 {
                blocks.push(Vec::new());
            }
        }
        let mut iter = blocks.into_iter();
        let mut resp = Response::chunked("application/octet-stream", Box::new(move || iter.next()));
        let mut wire = Vec::new();
        resp.write_to(&mut wire, keep_alive).unwrap();
        let parsed = ResponseReader::new(Cursor::new(wire)).next_response().unwrap();
        prop_assert_eq!(parsed.status, 200);
        prop_assert!(parsed.chunked);
        prop_assert_eq!(parsed.body, payload);
        prop_assert_eq!(
            parsed.header("connection"),
            Some(if keep_alive { "keep-alive" } else { "close" })
        );
    }

    /// Arbitrary bytes into the JSON parser (the request-body path):
    /// never a panic, and parse-serialize-parse is a fixed point.
    #[test]
    fn json_parser_never_panics_and_reserialization_is_stable(
        len in 0usize..128,
        pool in proptest::collection::vec(0u32..256, 128)
    ) {
        let bytes: Vec<u8> = pool.iter().take(len).map(|&b| b as u8).collect();
        if let Ok(text) = std::str::from_utf8(&bytes) {
            if let Ok(value) = json::parse(text) {
                let once = value.to_string();
                let twice = json::parse(&once).unwrap().to_string();
                prop_assert_eq!(once, twice);
            }
        }
    }

    /// Valid-JSON fuzz: structured documents with arbitrary numbers and
    /// strings always round-trip value-identically.
    #[test]
    fn json_round_trips_structured_documents(
        seed_v in 0.0f64..9e15,
        n in 0u32..1000,
        name_pool in proptest::collection::vec(0u32..256, 8)
    ) {
        let name: String = name_pool
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        let doc = json::Json::Obj(vec![
            ("seed".to_string(), json::Json::Num(seed_v.trunc())),
            ("n".to_string(), json::Json::Num(f64::from(n))),
            ("name".to_string(), json::Json::Str(name)),
        ]);
        let text = doc.to_string();
        let back = json::parse(&text).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// HttpError::status is total over the error space reachable from
    /// sockets (every variant yields a 4xx/5xx with a reason phrase).
    #[test]
    fn http_errors_always_map_to_responses(pick in 0usize..11) {
        let errors = [
            HttpError::Incomplete,
            HttpError::BadRequestLine,
            HttpError::UnsupportedMethod,
            HttpError::UnsupportedVersion,
            HttpError::BadHeader,
            HttpError::HeadTooLarge,
            HttpError::TooManyHeaders,
            HttpError::BadContentLength,
            HttpError::BodyTooLarge,
            HttpError::UnsupportedTransferEncoding,
            HttpError::Io(std::io::ErrorKind::TimedOut),
        ];
        let e = &errors[pick];
        prop_assert!((400..=599).contains(&e.status()));
        prop_assert!(!e.to_string().is_empty());
    }
}

#[test]
fn metrics_endpoint_exposes_requests_denials_and_budget_end_to_end() {
    use p3gm::obs::{AccessLogTarget, ObsConfig};

    let dir = model_dir("metrics", &["m"]);
    let stamp = trained_snapshot().privacy_stamp().copied().unwrap();
    let log_path = dir.join("access.log");
    let server = start(
        ServerConfig::builder(&dir)
            .threads(2)
            .budget_epsilon(Some(1.5 * stamp.epsilon))
            .obs(ObsConfig::enabled().with_access_log(AccessLogTarget::File(log_path.clone())))
            .build(),
    )
    .unwrap();
    let addr = server.addr();

    let body = r#"{"seed": 3, "n": 4}"#;
    let (status, _, _) = request(addr, "POST", "/models/m/sample", body);
    assert_eq!(status, 200);
    // The budget (1.5 epsilon) only covers one release: the second
    // sampling request is the seeded 429.
    let (status, _, _) = request(addr, "POST", "/models/m/sample", body);
    assert_eq!(status, 429);

    let (status, head, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type missing: {head}"
    );
    for needle in [
        "# TYPE p3gm_requests_total counter",
        "p3gm_requests_total{route=\"/models/{name}/sample\",status=\"200\"} 1",
        "p3gm_requests_total{route=\"/models/{name}/sample\",status=\"429\"} 1",
        "p3gm_budget_denials_total{model=\"m\"} 1",
        "p3gm_epsilon_spent{model=\"m\"}",
        "p3gm_epsilon_remaining{model=\"m\"}",
        "p3gm_registry_models 1",
        "p3gm_registry_loads_total 1",
        "p3gm_stream_bytes_total",
        "p3gm_request_duration_seconds_bucket{route=\"/models/{name}/sample\",le=\"+Inf\"} 2",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // /stats and /metrics flow through the same snapshot: the JSON counters
    // must match the exposition's registry series.
    let (_, _, stats) = request(addr, "GET", "/stats", "");
    let stats = json::parse(&stats).unwrap();
    let loads = stats.get("loads").unwrap().as_u64().unwrap();
    let (_, _, text) = request(addr, "GET", "/metrics", "");
    assert!(text.contains(&format!("p3gm_registry_loads_total {loads}")));

    server.shutdown();
    // One access-log line per request, written to the configured file.
    let log = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert!(lines.len() >= 5, "expected >= 5 access-log lines:\n{log}");
    // Workers append concurrently, so assert on presence, not order.
    assert!(
        lines.iter().any(|l| l.contains("method=POST")
            && l.contains("target=/models/m/sample")
            && l.contains("status=200")
            && l.contains("dur_us=")),
        "no 200 sample line in:\n{log}"
    );
    assert!(log.contains("status=429"), "{log}");

    // With observability disabled, /metrics answers 404 and no log grows.
    let dir = model_dir("metrics_off", &["m"]);
    let server = start(
        ServerConfig::builder(&dir)
            .threads(1)
            .obs(ObsConfig::disabled())
            .build(),
    )
    .unwrap();
    let (status, _, _) = request(server.addr(), "GET", "/metrics", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(server.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    server.shutdown();
}
