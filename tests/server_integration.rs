//! Integration tests for the `p3gm-server` HTTP surface: end-to-end
//! sampling over a real TCP socket is bit-identical to the in-process
//! snapshot, malformed/hostile input gets typed 4xx/5xx responses with
//! zero panics, hot reload swaps models without dropping the service,
//! and the privacy budget ledger survives a server restart.

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::SynthesisSnapshot;
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::core::{DecoderLoss, VarianceMode};
use p3gm::linalg::Matrix;
use p3gm::privacy::sampling;
use p3gm::server::http::{read_request, HttpError, Limits};
use p3gm::server::{json, start, ServerConfig, ServerHandle};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// Trains the shared test model once (the expensive fixture).
fn trained_snapshot() -> &'static SynthesisSnapshot {
    static SNAPSHOT: OnceLock<SynthesisSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(404);
        let rows: Vec<Vec<f64>> = (0..90)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..6)
                    .map(|j| {
                        let base = if (j < 3) == hot { 0.85 } else { 0.15 };
                        (base + sampling::normal(&mut rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..90).map(|i| i % 2).collect();
        let features = Matrix::from_rows(&rows).unwrap();
        let (synth, prepared) = LabelledSynthesizer::prepare(&features, &labels, 2).unwrap();
        let config = PgmConfig {
            latent_dim: 3,
            hidden_dim: 12,
            mog_components: 2,
            epochs: 3,
            batch_size: 16,
            learning_rate: 5e-3,
            clip_norm: 1.0,
            private: true,
            eps_p: 0.5,
            sigma_e: 50.0,
            em_iterations: 3,
            sigma_s: 1.0,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        };
        let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).unwrap();
        SynthesisSnapshot::capture(model).with_synthesizer(synth)
    })
}

/// A fresh model directory containing the shared snapshot under `name`.
fn model_dir(test: &str, names: &[&str]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p3gm_server_it_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for name in names {
        std::fs::write(
            dir.join(format!("{name}.snapshot")),
            trained_snapshot().to_bytes(),
        )
        .unwrap();
    }
    dir
}

fn start_server(dir: &PathBuf, threads: usize, budget: Option<f64>) -> ServerHandle {
    start(ServerConfig {
        threads,
        budget_epsilon: budget,
        ..ServerConfig::new(dir)
    })
    .unwrap()
}

/// Minimal HTTP client: one request, returns (status, headers, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    read_response(stream)
}

/// Writes raw bytes (possibly malformed on purpose) and reads the
/// response.
fn raw_request(addr: SocketAddr, bytes: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Ignore write errors: the server may legitimately reject and close
    // before the full (hostile) request is sent.
    let _ = stream.write_all(bytes);
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, String, String) {
    // Best-effort read: a server rejecting a partially-sent request may
    // reset the connection after its response; keep whatever arrived.
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
        }
    }
    let raw = String::from_utf8(raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

#[test]
fn http_sampling_is_bit_identical_to_in_process_under_concurrency() {
    let dir = model_dir("concurrency", &["m"]);
    let server = start_server(&dir, 4, None);
    let addr = server.addr();

    // 4 concurrent clients, same (model, seed, n).
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let (status, _, body) =
                        request(addr, "POST", "/models/m/sample", r#"{"seed": 42, "n": 25}"#);
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "concurrent responses must be identical");
    }

    // The served rows are bit-identical to the in-process snapshot.
    let expected = trained_snapshot().sample(42, 25);
    let parsed = json::parse(&bodies[0]).unwrap();
    let rows = parsed.get("rows").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), 25);
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_arr().unwrap();
        assert_eq!(row.len(), expected.cols());
        for (j, v) in row.iter().enumerate() {
            assert_eq!(
                v.as_f64().unwrap().to_bits(),
                expected.get(i, j).to_bits(),
                "row {i} col {j}"
            );
        }
    }

    // The stamp headers ride along and are constant.
    let (_, head, _) = request(addr, "POST", "/models/m/sample", r#"{"seed": 42, "n": 25}"#);
    assert!(head.contains("x-p3gm-privacy: ("), "{head}");
    assert!(head.contains("x-p3gm-epsilon-spent: "), "{head}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn discovery_endpoints_report_geometry_and_stamp() {
    let dir = model_dir("discovery", &["m"]);
    let server = start_server(&dir, 2, None);
    let addr = server.addr();

    let (status, _, body) = request(addr, "GET", "/", "");
    assert_eq!(status, 200);
    assert!(body.contains("p3gm-server"));

    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"models\":1"));

    let snapshot = trained_snapshot();
    let stamp = snapshot.privacy_stamp().unwrap();
    let (status, _, body) = request(addr, "GET", "/models/m", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    assert_eq!(
        parsed.get("data_dim").unwrap().as_u64(),
        Some(snapshot.model().data_dim() as u64)
    );
    assert_eq!(parsed.get("n_classes").unwrap().as_u64(), Some(2));
    let privacy = parsed.get("privacy").unwrap();
    assert_eq!(
        privacy.get("epsilon").unwrap().as_f64().unwrap().to_bits(),
        stamp.epsilon.to_bits(),
        "the reported ε is the recomputed stamp, bit-exact"
    );

    let (status, _, _) = request(addr, "GET", "/models/absent", "");
    assert_eq!(status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_typed_4xx_and_the_server_survives() {
    let dir = model_dir("malformed", &["m"]);
    let server = start_server(&dir, 2, None);
    let addr = server.addr();

    // (raw bytes, expected status)
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400),
        (b"GET / HTTP/1.1 extra words\r\n\r\n".to_vec(), 400),
        (b"PUT /models HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"GET /models HTTP/2.0\r\n\r\n".to_vec(), 505),
        (b"DELETE /models/m HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"GET /nope HTTP/1.1\r\n\r\n".to_vec(), 404),
        (b"GET /models/m/sample HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"POST /models HTTP/1.1\r\n\r\n".to_vec(), 405),
        (
            b"POST /models/m/sample HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson".to_vec(),
            400,
        ),
        (
            b"POST /models/m/sample HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /models/m/sample HTTP/1.1\r\nContent-Length: 14\r\n\r\n{\"seed\":\"x\"}..".to_vec(),
            400,
        ),
        (
            b"POST /models/absent/sample HTTP/1.1\r\nContent-Length: 20\r\n\r\n{\"seed\": 1, \"n\": 10}".to_vec(),
            404,
        ),
        (
            b"POST /models/m/sample HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
        (
            b"POST /models/m/sample HTTP/1.1\r\nContent-Length: zzz\r\n\r\n".to_vec(),
            400,
        ),
        (
            format!(
                "GET /models HTTP/1.1\r\nX-Huge: {}\r\n\r\n",
                "h".repeat(64 * 1024)
            )
            .into_bytes(),
            431,
        ),
        (
            format!(
                "POST /models/m/sample HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                16 * 1024 * 1024
            )
            .into_bytes(),
            413,
        ),
    ];
    for (bytes, expected) in cases {
        let shown = String::from_utf8_lossy(&bytes[..bytes.len().min(60)]).into_owned();
        let (status, _, body) = raw_request(addr, &bytes);
        assert_eq!(status, expected, "{shown:?} -> {body}");
        assert!(body.contains("error") || expected < 400, "{shown:?}");
    }

    // Over-limit n and bad fields through the well-formed client path.
    let (status, _, _) = request(
        addr,
        "POST",
        "/models/m/sample",
        r#"{"seed": 1, "n": 999999999}"#,
    );
    assert_eq!(status, 400);
    let (status, _, _) = request(
        addr,
        "POST",
        "/models/m/sample",
        r#"{"seed": 1, "n": 5, "labels": [9, 9]}"#,
    );
    assert_eq!(status, 400);

    // After all that abuse the server still serves.
    let (status, _, _) = request(addr, "POST", "/models/m/sample", r#"{"seed": 3, "n": 2}"#);
    assert_eq!(status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_row_requests_and_csv_format_are_served() {
    let dir = model_dir("formats", &["m"]);
    let server = start_server(&dir, 2, None);
    let addr = server.addr();

    let (status, _, body) = request(addr, "POST", "/models/m/sample", r#"{"seed": 1, "n": 0}"#);
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    assert_eq!(parsed.get("n").unwrap().as_u64(), Some(0));
    assert_eq!(parsed.get("rows").unwrap().as_arr().unwrap().len(), 0);

    let csv_req = r#"{"seed": 7, "n": 4, "format": "csv"}"#;
    let (status, head, body_a) = request(addr, "POST", "/models/m/sample", csv_req);
    assert_eq!(status, 200);
    assert!(head.contains("text/csv"));
    let (_, _, body_b) = request(addr, "POST", "/models/m/sample", csv_req);
    assert_eq!(body_a, body_b, "CSV bodies are deterministic too");
    assert_eq!(body_a.lines().count(), 4);
    // Every CSV value parses back to the exact in-process sample bits.
    let expected = trained_snapshot().sample(7, 4);
    for (i, line) in body_a.lines().enumerate() {
        for (j, field) in line.split(',').enumerate() {
            let v: f64 = field.parse().unwrap();
            assert_eq!(v.to_bits(), expected.get(i, j).to_bits());
        }
    }

    // Labelled synthesis over HTTP: per-class counts, labels in the body.
    let (status, _, body) = request(
        addr,
        "POST",
        "/models/m/sample",
        r#"{"seed": 5, "labels": [3, 2]}"#,
    );
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    let labels = parsed.get("labels").unwrap().as_arr().unwrap();
    assert_eq!(labels.len(), 5);
    let ones = labels.iter().filter(|l| l.as_u64() == Some(1)).count();
    assert_eq!(ones, 2);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_exhaustion_is_429_and_survives_restart() {
    let dir = model_dir("budget", &["m"]);
    let stamp = trained_snapshot().privacy_stamp().copied().unwrap();
    let budget = Some(1.5 * stamp.epsilon);

    let server = start_server(&dir, 2, budget);
    let addr = server.addr();
    let body = r#"{"seed": 9, "n": 3}"#;
    let (status, head, _) = request(addr, "POST", "/models/m/sample", body);
    assert_eq!(status, 200);
    assert!(head.contains("x-p3gm-epsilon-remaining: "), "{head}");
    // A request that can only be answered 400 (wrong class count for a
    // 2-class model) must not burn budget: it is rejected before the
    // charge, so the next valid request still gets the remaining ε.
    let (status, _, _) = request(
        addr,
        "POST",
        "/models/m/sample",
        r#"{"seed": 9, "labels": [1, 1, 1]}"#,
    );
    assert_eq!(status, 400);
    let (_, _, detail) = request(addr, "GET", "/models/m", "");
    let spent_after_400 = json::parse(&detail)
        .unwrap()
        .get("budget")
        .unwrap()
        .get("spent_epsilon")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(
        spent_after_400.to_bits(),
        stamp.epsilon.to_bits(),
        "a 400-rejected request must not change the spent budget"
    );
    let (status, _, refusal) = request(addr, "POST", "/models/m/sample", body);
    assert_eq!(status, 429, "{refusal}");
    let parsed = json::parse(&refusal).unwrap();
    assert_eq!(
        parsed
            .get("spent_epsilon")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits(),
        stamp.epsilon.to_bits()
    );
    assert!(parsed.get("remaining_epsilon").unwrap().as_f64().unwrap() >= 0.0);
    server.shutdown();

    // Restart on the same directory: the ledger file (p3gm-store codec)
    // still holds the spend, so the very first request is refused.
    let server = start_server(&dir, 2, budget);
    let (status, _, _) = request(server.addr(), "POST", "/models/m/sample", body);
    assert_eq!(status, 429, "restart must not reset spent budget");
    // Read-only endpoints still work and report the persisted spend.
    let (status, _, body) = request(server.addr(), "GET", "/models/m", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    let spent = parsed
        .get("budget")
        .unwrap()
        .get("spent_epsilon")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(spent.to_bits(), stamp.epsilon.to_bits());
    server.shutdown();

    // A corrupt ledger file refuses to open (typed error), never resets.
    let ledger_path = dir.join("ledger.p3gm");
    let mut bytes = std::fs::read(&ledger_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&ledger_path, &bytes).unwrap();
    assert!(start(ServerConfig {
        budget_epsilon: budget,
        ..ServerConfig::new(&dir)
    })
    .is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_reload_swaps_adds_and_removes_models_without_downtime() {
    let dir = model_dir("reload", &["a"]);
    // Start with a *bare* variant of "a" (no synthesizer): detail shows
    // n_classes null.
    let bare = SynthesisSnapshot::capture(trained_snapshot().model().clone());
    std::fs::write(dir.join("a.snapshot"), bare.to_bytes()).unwrap();

    let server = start_server(&dir, 2, None);
    let addr = server.addr();
    let (_, _, body) = request(addr, "GET", "/models/a", "");
    assert_eq!(
        json::parse(&body).unwrap().get("n_classes"),
        Some(&json::Json::Null)
    );
    let (_, _, body) = request(addr, "GET", "/models", "");
    let listed = json::parse(&body).unwrap();
    assert_eq!(listed.get("models").unwrap().as_arr().unwrap().len(), 1);

    // Change "a" (now with synthesizer), add "b", add a corrupt "c".
    std::fs::write(dir.join("a.snapshot"), trained_snapshot().to_bytes()).unwrap();
    std::fs::write(dir.join("b.snapshot"), trained_snapshot().to_bytes()).unwrap();
    std::fs::write(
        dir.join("c.snapshot"),
        b"this is long enough to frame-check but is not a p3gm snapshot",
    )
    .unwrap();

    let (status, _, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 200);
    let report = json::parse(&body).unwrap();
    let loaded = report.get("loaded").unwrap().as_arr().unwrap();
    assert!(
        loaded.iter().any(|v| v.as_str() == Some("a"))
            && loaded.iter().any(|v| v.as_str() == Some("b")),
        "{body}"
    );
    assert_eq!(report.get("failed").unwrap().as_arr().unwrap().len(), 1);

    // The swapped "a" now has the synthesizer; "b" serves; "c" does not.
    let (_, _, body) = request(addr, "GET", "/models/a", "");
    assert_eq!(
        json::parse(&body)
            .unwrap()
            .get("n_classes")
            .unwrap()
            .as_u64(),
        Some(2)
    );
    let (status, _, _) = request(addr, "POST", "/models/b/sample", r#"{"seed": 1, "n": 2}"#);
    assert_eq!(status, 200);
    let (status, _, _) = request(addr, "GET", "/models/c", "");
    assert_eq!(status, 404);

    // Remove "b": a reload drops it; "a" is untouched (unchanged file).
    std::fs::remove_file(dir.join("b.snapshot")).unwrap();
    let (_, _, body) = request(addr, "POST", "/reload", "");
    let report = json::parse(&body).unwrap();
    let removed = report.get("removed").unwrap().as_arr().unwrap();
    assert!(removed.iter().any(|v| v.as_str() == Some("b")), "{body}");
    let unchanged = report.get("unchanged").unwrap().as_arr().unwrap();
    assert!(unchanged.iter().any(|v| v.as_str() == Some("a")), "{body}");
    let (status, _, _) = request(addr, "GET", "/models/b", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "POST", "/models/a/sample", r#"{"seed": 1, "n": 2}"#);
    assert_eq!(status, 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes into the request parser: never a panic, always
    /// either a parsed request or a typed error mapping to 4xx/5xx.
    #[test]
    fn request_parser_never_panics_on_arbitrary_bytes(
        len in 0usize..384,
        pool in proptest::collection::vec(0u32..256, 384)
    ) {
        let bytes: Vec<u8> = pool.iter().take(len).map(|&b| b as u8).collect();
        let limits = Limits::default();
        match read_request(&mut Cursor::new(bytes), &limits) {
            Ok(req) => prop_assert!(req.target.starts_with('/')),
            Err(e) => {
                let status = e.status();
                prop_assert!((400..=599).contains(&status), "{e:?} -> {status}");
            }
        }
    }

    /// Structured-ish garbage: an almost-valid head with fuzzed method,
    /// target and header bytes exercises the deeper parser branches.
    #[test]
    fn request_parser_never_panics_on_fuzzed_heads(
        method_pool in proptest::collection::vec(0u32..256, 6),
        target_pool in proptest::collection::vec(0u32..256, 12),
        header_pool in proptest::collection::vec(0u32..256, 24),
        content_length in 0u32..64
    ) {
        let method: Vec<u8> = method_pool.iter().map(|&b| b as u8).collect();
        let target: Vec<u8> = target_pool.iter().map(|&b| b as u8).collect();
        let header: Vec<u8> = header_pool.iter().map(|&b| b as u8).collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&method);
        bytes.push(b' ');
        bytes.extend_from_slice(&target);
        bytes.extend_from_slice(b" HTTP/1.1\r\n");
        bytes.extend_from_slice(&header);
        bytes.extend_from_slice(b"\r\n");
        bytes.extend_from_slice(format!("Content-Length: {content_length}\r\n\r\n").as_bytes());
        bytes.extend_from_slice(&vec![b'x'; content_length as usize]);
        match read_request(&mut Cursor::new(bytes), &Limits::default()) {
            Ok(req) => prop_assert_eq!(req.body.len(), content_length as usize),
            Err(e) => prop_assert!((400..=599).contains(&e.status())),
        }
    }

    /// Arbitrary bytes into the JSON parser (the request-body path):
    /// never a panic, and parse-serialize-parse is a fixed point.
    #[test]
    fn json_parser_never_panics_and_reserialization_is_stable(
        len in 0usize..128,
        pool in proptest::collection::vec(0u32..256, 128)
    ) {
        let bytes: Vec<u8> = pool.iter().take(len).map(|&b| b as u8).collect();
        if let Ok(text) = std::str::from_utf8(&bytes) {
            if let Ok(value) = json::parse(text) {
                let once = value.to_string();
                let twice = json::parse(&once).unwrap().to_string();
                prop_assert_eq!(once, twice);
            }
        }
    }

    /// Valid-JSON fuzz: structured documents with arbitrary numbers and
    /// strings always round-trip value-identically.
    #[test]
    fn json_round_trips_structured_documents(
        seed_v in 0.0f64..9e15,
        n in 0u32..1000,
        name_pool in proptest::collection::vec(0u32..256, 8)
    ) {
        let name: String = name_pool
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        let doc = json::Json::Obj(vec![
            ("seed".to_string(), json::Json::Num(seed_v.trunc())),
            ("n".to_string(), json::Json::Num(f64::from(n))),
            ("name".to_string(), json::Json::Str(name)),
        ]);
        let text = doc.to_string();
        let back = json::parse(&text).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// HttpError::status is total over the error space reachable from
    /// sockets (every variant yields a 4xx/5xx with a reason phrase).
    #[test]
    fn http_errors_always_map_to_responses(pick in 0usize..11) {
        let errors = [
            HttpError::Incomplete,
            HttpError::BadRequestLine,
            HttpError::UnsupportedMethod,
            HttpError::UnsupportedVersion,
            HttpError::BadHeader,
            HttpError::HeadTooLarge,
            HttpError::TooManyHeaders,
            HttpError::BadContentLength,
            HttpError::BodyTooLarge,
            HttpError::UnsupportedTransferEncoding,
            HttpError::Io(std::io::ErrorKind::TimedOut),
        ];
        let e = &errors[pick];
        prop_assert!((400..=599).contains(&e.status()));
        prop_assert!(!e.to_string().is_empty());
    }
}
