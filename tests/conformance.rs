//! The conformance pass as a tier-1 test: the workspace must satisfy its
//! own determinism and hardening contracts (rules D1–D6), and each rule
//! must actually fire on a seeded violation — so a silently broken engine
//! cannot masquerade as a clean workspace.
//!
//! The same pass ships as the `p3gm-conform` binary for CI; this test is
//! the in-process twin that runs under plain `cargo test`.

use std::path::Path;

use p3gm_conform::{check_source, scan_workspace, RuleId};

/// The rule IDs that fire for `src` placed at `path`, in report order.
fn rules_hit(path: &str, src: &str) -> Vec<RuleId> {
    check_source(path, src.as_bytes())
        .iter()
        .map(|v| v.rule)
        .collect()
}

/// A fixture prelude that satisfies D5 so fixtures only trip the rule
/// under test.
const FORBID: &str = "#![forbid(unsafe_code)]\n";

#[test]
fn workspace_conforms_to_its_own_contracts() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = scan_workspace(root).expect("workspace must be readable");
    assert!(
        report.is_clean(),
        "conformance violations:\n{}",
        report.render(),
    );
    // The scan must have actually visited the workspace, not an empty or
    // wrong directory: every crate has at least a lib.rs in scope.
    assert!(
        report.files_checked >= 40,
        "only {} files checked — scan missed the workspace",
        report.files_checked,
    );
}

#[test]
fn d1_fires_on_contractible_fma_in_numeric_crates() {
    let src = format!("{FORBID}pub fn f(a: f64) -> f64 {{ a.mul_add(2.0, 1.0) }}\n");
    assert_eq!(
        rules_hit("crates/linalg/src/kernels.rs", &src),
        vec![RuleId::D1]
    );
    let src = format!("{FORBID}pub fn g(d: f64) -> f64 {{ d.powi(3) }}\n");
    assert_eq!(
        rules_hit("crates/nn/src/optimizer.rs", &src),
        vec![RuleId::D1]
    );
    // The same call in a non-numeric crate is not D1's business.
    let src = format!("{FORBID}pub fn f(a: f64) -> f64 {{ a.mul_add(2.0, 1.0) }}\n");
    assert_eq!(rules_hit("crates/bench/src/lib.rs", &src), vec![]);
}

#[test]
fn d2_fires_on_raw_threads_and_clocks_outside_exempt_crates() {
    let src = format!("{FORBID}pub fn f() {{ std::thread::spawn(|| ()); }}\n");
    assert_eq!(
        rules_hit("crates/mixture/src/em.rs", &src),
        vec![RuleId::D2]
    );
    let src = format!("{FORBID}pub fn t() {{ let _ = std::time::Instant::now(); }}\n");
    assert_eq!(rules_hit("crates/core/src/lib.rs", &src), vec![RuleId::D2]);
    // `p3gm-parallel` is the sanctioned home for raw threads.
    let src = format!("{FORBID}pub fn f() {{ std::thread::spawn(|| ()); }}\n");
    assert_eq!(rules_hit("crates/parallel/src/pool.rs", &src), vec![]);
}

#[test]
fn d2_allowlists_exactly_the_obs_clock_file() {
    // The obs crate's injectable-timer design confines real clocks to one
    // file; the rest of the crate stays under D2 like everyone else.
    let clock = format!("{FORBID}pub fn t() {{ let _ = std::time::Instant::now(); }}\n");
    assert_eq!(rules_hit("crates/obs/src/time.rs", &clock), vec![]);
    assert_eq!(rules_hit("crates/obs/src/lib.rs", &clock), vec![RuleId::D2]);
    let wall = format!("{FORBID}pub fn t() {{ let _ = std::time::SystemTime::now(); }}\n");
    assert_eq!(rules_hit("crates/obs/src/time.rs", &wall), vec![]);
    // The allowlist must not loosen D2 anywhere else: a clock smuggled
    // into a numeric crate still fails.
    assert_eq!(
        rules_hit("crates/privacy/src/mechanisms.rs", &clock),
        vec![RuleId::D2]
    );
}

#[test]
fn d3_fires_on_hash_collections_in_numeric_crates() {
    let src = format!("{FORBID}use std::collections::HashMap;\n");
    assert_eq!(
        rules_hit("crates/privacy/src/lib.rs", &src),
        vec![RuleId::D3]
    );
    let src = format!("{FORBID}use std::collections::HashSet;\n");
    assert_eq!(
        rules_hit("crates/preprocess/src/encode.rs", &src),
        vec![RuleId::D3]
    );
    // Iteration-order-dependent containers are fine outside numeric code.
    let src = format!("{FORBID}use std::collections::HashMap;\n");
    assert_eq!(rules_hit("crates/server/src/lib.rs", &src), vec![]);
}

#[test]
fn d4_fires_on_panic_paths_in_untrusted_byte_zones() {
    let src = format!("{FORBID}pub fn f(v: &[u8]) -> u8 {{ v.first().copied().unwrap() }}\n");
    assert_eq!(rules_hit("crates/store/src/lib.rs", &src), vec![RuleId::D4]);
    let src = format!("{FORBID}pub fn f(s: &str) -> usize {{ s.find(':').expect(\"colon\") }}\n");
    assert_eq!(
        rules_hit("crates/server/src/http.rs", &src),
        vec![RuleId::D4]
    );
    let src = format!("{FORBID}pub fn f(n: usize) {{ assert!(n < 4096); }}\n");
    assert_eq!(
        rules_hit("crates/server/src/json.rs", &src),
        vec![RuleId::D4]
    );
    // The same code under #[cfg(test)] is a test's prerogative.
    let src = format!(
        "{FORBID}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{ assert!(1 < 2); [0u8][0]; Some(1).unwrap(); }}\n}}\n"
    );
    assert_eq!(rules_hit("crates/server/src/ledger.rs", &src), vec![]);
    // And outside the declared zones, unwrap is merely discouraged.
    let src = format!("{FORBID}pub fn f() {{ Some(1).unwrap(); }}\n");
    assert_eq!(rules_hit("crates/bench/src/lib.rs", &src), vec![]);
}

#[test]
fn d5_fires_on_a_crate_root_missing_forbid_unsafe() {
    let src = "pub fn f() {}\n";
    assert_eq!(rules_hit("crates/linalg/src/lib.rs", src), vec![RuleId::D5]);
    // Non-root modules carry no such obligation.
    assert_eq!(rules_hit("crates/linalg/src/kernels.rs", src), vec![]);
}

#[test]
fn d5_shim_exemption_confines_unsafe_to_the_server_sys_file() {
    // The server crate root may deny (not forbid) unsafe, because the
    // reactor's poll(2) FFI shim needs a file-level allow...
    let src = "#![deny(unsafe_code)]\npub mod http;\n";
    assert_eq!(rules_hit("crates/server/src/lib.rs", src), vec![]);
    // ...the shim file itself is the single sanctioned unsafe site...
    let shim =
        "#![allow(unsafe_code)]\npub fn p() { unsafe { std::hint::unreachable_unchecked() } }\n";
    assert_eq!(rules_hit("crates/server/src/sys.rs", shim), vec![]);
    // ...and any unsafe token in any OTHER server file is a D5 violation,
    // so the confinement the compiler no longer proves is checked here.
    let smuggled = "pub fn p(q: *const u8) -> u8 { unsafe { *q } }\n";
    assert_eq!(
        rules_hit("crates/server/src/registry.rs", smuggled),
        vec![RuleId::D5]
    );
    // Every other crate still requires full forbid at the root.
    assert_eq!(
        rules_hit("crates/obs/src/lib.rs", "#![deny(unsafe_code)]\n"),
        vec![RuleId::D5]
    );
}

#[test]
fn d6_fires_on_f32_in_numeric_crates() {
    let src = format!("{FORBID}pub fn f(x: f32) {{ let _ = x; }}\n");
    assert_eq!(
        rules_hit("crates/mixture/src/lib.rs", &src),
        vec![RuleId::D6]
    );
    // f32 is allowed where determinism contracts don't bind (e.g. server).
    let src = format!("{FORBID}pub fn f(x: f32) -> f32 {{ x }}\n");
    assert_eq!(rules_hit("crates/server/src/lib.rs", &src), vec![]);
}

#[test]
fn allow_annotation_suppresses_but_must_be_justified_and_used() {
    // A justified trailing annotation suppresses exactly its rule.
    let src = format!(
        "{FORBID}pub fn f(d: f64) -> f64 {{ d.powi(2) }} // conform: allow(d1) — matches reference impl bit-for-bit\n"
    );
    assert_eq!(rules_hit("crates/core/src/lib.rs", &src), vec![]);
    // No justification → the annotation itself is a violation (A0) and
    // the underlying rule still fires.
    let src = format!("{FORBID}pub fn f(d: f64) -> f64 {{ d.powi(2) }} // conform: allow(d1)\n");
    let hit = rules_hit("crates/core/src/lib.rs", &src);
    assert!(hit.contains(&RuleId::A0), "hit: {hit:?}");
    assert!(hit.contains(&RuleId::D1), "hit: {hit:?}");
    // An annotation with nothing left to suppress is stale (A0).
    let src =
        format!("{FORBID}pub fn f(d: f64) -> f64 {{ d * d }} // conform: allow(d1) — stale now\n");
    assert_eq!(rules_hit("crates/core/src/lib.rs", &src), vec![RuleId::A0]);
}

#[test]
fn violations_report_path_line_and_message() {
    let src = format!("{FORBID}\npub fn f(a: f64) -> f64 {{\n    a.mul_add(2.0, 1.0)\n}}\n");
    let violations = check_source("crates/linalg/src/kernels.rs", src.as_bytes());
    assert_eq!(violations.len(), 1);
    let v = &violations[0];
    assert_eq!(v.path, "crates/linalg/src/kernels.rs");
    assert_eq!(v.line, 4);
    assert_eq!(v.rule, RuleId::D1);
    let rendered = v.to_string();
    assert!(
        rendered.contains("crates/linalg/src/kernels.rs:4"),
        "rendered: {rendered}",
    );
    assert!(rendered.contains("mul_add"), "rendered: {rendered}");
}
