//! Soak tests for the reactor server core: hundreds of concurrent
//! keep-alive connections ride a single poll(2) loop with a bounded OS
//! thread count, every body stays byte-identical to a fresh connection,
//! a slow-loris client gets the typed 408 while the crowd stays served,
//! a mid-stream abort still charges the privacy ledger exactly once —
//! and graceful shutdown drains idle connections promptly under BOTH
//! cores (the pin for removing the legacy 50 ms idle polling slice).

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::SynthesisSnapshot;
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::core::{DecoderLoss, VarianceMode};
use p3gm::linalg::Matrix;
use p3gm::privacy::sampling;
use p3gm::server::http::ResponseReader;
use p3gm::server::{json, start, ServerConfig, ServerCore, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Trains the shared test model once (the expensive fixture).
fn trained_snapshot() -> &'static SynthesisSnapshot {
    static SNAPSHOT: OnceLock<SynthesisSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(404);
        let rows: Vec<Vec<f64>> = (0..90)
            .map(|i| {
                let hot = i % 2 == 0;
                (0..6)
                    .map(|j| {
                        let base = if (j < 3) == hot { 0.85 } else { 0.15 };
                        (base + sampling::normal(&mut rng, 0.0, 0.05)).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..90).map(|i| i % 2).collect();
        let features = Matrix::from_rows(&rows).unwrap();
        let (synth, prepared) = LabelledSynthesizer::prepare(&features, &labels, 2).unwrap();
        let config = PgmConfig {
            latent_dim: 3,
            hidden_dim: 12,
            mog_components: 2,
            epochs: 3,
            batch_size: 16,
            learning_rate: 5e-3,
            clip_norm: 1.0,
            private: true,
            eps_p: 0.5,
            sigma_e: 50.0,
            em_iterations: 3,
            sigma_s: 1.0,
            delta: 1e-5,
            variance_mode: VarianceMode::Learned,
            decoder_loss: DecoderLoss::Bernoulli,
        };
        let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).unwrap();
        SynthesisSnapshot::capture(model).with_synthesizer(synth)
    })
}

/// A fresh model directory containing the shared snapshot under `name`.
fn model_dir(test: &str, names: &[&str]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p3gm_server_soak_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for name in names {
        std::fs::write(
            dir.join(format!("{name}.snapshot")),
            trained_snapshot().to_bytes(),
        )
        .unwrap();
    }
    dir
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

/// One-write request send (multiple small writes on a reused connection
/// would stall on Nagle + delayed ACK).
fn write_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
}

/// Minimal framed HTTP client: one fresh connection, one request,
/// de-chunks a streamed body; returns (status, body bytes).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = connect(addr);
    write_request(&mut stream, method, path, body);
    let response = ResponseReader::new(stream).next_response().unwrap();
    (response.status, response.body)
}

/// The live OS thread count of this test process.
fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

/// The model's cumulative spent epsilon as reported by discovery.
fn spent_epsilon(addr: SocketAddr) -> f64 {
    let (status, body) = request(addr, "GET", "/models/m", "");
    assert_eq!(status, 200);
    json::parse(&String::from_utf8(body).unwrap())
        .unwrap()
        .get("budget")
        .unwrap()
        .get("spent_epsilon")
        .unwrap()
        .as_f64()
        .unwrap()
}

/// The big soak: hundreds of keep-alive connections held open at once by
/// the reactor while hostile clients (a slow loris, a mid-stream abort)
/// share the same poll loop — without the OS thread count growing with
/// the connection count, and without a byte of drift in any response.
#[test]
fn reactor_soaks_hundreds_of_keep_alive_connections() {
    const CONNS: usize = 300;
    let dir = model_dir("soak", &["m"]);
    let stamp = trained_snapshot().privacy_stamp().copied().unwrap();
    let server = start(
        ServerConfig::builder(&dir)
            .core(ServerCore::Reactor)
            .threads(2)
            .budget_epsilon(Some(100.0 * stamp.epsilon))
            .request_read_timeout(Duration::from_millis(300))
            .keep_alive_timeout(Duration::from_secs(30))
            .build(),
    )
    .unwrap();
    let addr = server.addr();

    // Warm the server (executor pool is already up) and snapshot the
    // process's thread count before the herd arrives.
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let threads_before = os_thread_count();

    // Open the herd, write every request first, then read every
    // response: all connections are simultaneously open and in flight.
    let mut herd: Vec<TcpStream> = (0..CONNS).map(|_| connect(addr)).collect();
    for stream in herd.iter_mut() {
        write_request(stream, "GET", "/healthz", "");
    }
    let mut clients: Vec<ResponseReader<TcpStream>> = herd
        .iter()
        .map(|s| ResponseReader::new(s.try_clone().unwrap()))
        .collect();
    for client in clients.iter_mut() {
        let resp = client.next_response().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }

    // With all of them idle-open, the thread count must not have grown
    // with the connection count: the reactor holds sockets, not threads.
    let threads_during = os_thread_count();
    assert!(
        threads_during <= threads_before + 8,
        "reactor must not spawn per-connection threads: \
         {threads_before} before, {threads_during} with {CONNS} open"
    );

    // A slow loris joins the crowd: a partial request line, then
    // silence. The read deadline expires and it gets the typed 408
    // while everyone else stays connected.
    let mut loris = connect(addr);
    loris.write_all(b"GET /mod").unwrap();
    let resp = ResponseReader::new(loris).next_response().unwrap();
    assert_eq!(resp.status, 408);
    assert_eq!(resp.header("connection"), Some("close"));

    // A mid-stream abort: request a big streamed batch, read just the
    // status line, slam the socket shut. The ledger charges exactly
    // one ε — no re-charge on the broken pipe, no refund either.
    let mut abort = connect(addr);
    write_request(
        &mut abort,
        "POST",
        "/models/m/sample",
        r#"{"seed": 3, "n": 80000, "format": "csv"}"#,
    );
    let mut first = [0u8; 256];
    let mut got = 0;
    while got < "HTTP/1.1 200".len() {
        let n = abort.read(&mut first[got..]).unwrap();
        assert!(n > 0, "the stream must start before the abort");
        got += n;
    }
    assert!(
        String::from_utf8_lossy(&first[..got]).starts_with("HTTP/1.1 200"),
        "the charge precedes the first chunk; got {:?}",
        String::from_utf8_lossy(&first[..got])
    );
    drop(abort);
    // Give the executor a moment to hit the broken pipe and finish.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        spent_epsilon(addr).to_bits(),
        stamp.epsilon.to_bits(),
        "mid-stream abort under soak must leave exactly one charge"
    );

    // The herd survived both hostiles: an active subset samples over
    // its still-open connections, and every body is byte-identical to
    // the same request on a fresh connection.
    let body = r#"{"seed": 17, "n": 40}"#;
    let (fresh_status, fresh_body) = request(addr, "POST", "/models/m/sample", body);
    assert_eq!(fresh_status, 200);
    for i in (0..CONNS).step_by(37) {
        write_request(&mut herd[i], "POST", "/models/m/sample", body);
        let resp = clients[i].next_response().unwrap();
        assert_eq!(resp.status, 200, "conn {i}");
        assert!(resp.chunked, "keep-alive sampling responses stream");
        assert_eq!(resp.body, fresh_body, "conn {i} drifted from fresh bytes");
    }

    // And the rest of the herd is still open too: a final round-trip on
    // every connection proves nothing was silently dropped.
    for stream in herd.iter_mut() {
        write_request(stream, "GET", "/healthz", "");
    }
    for (i, client) in clients.iter_mut().enumerate() {
        assert_eq!(client.next_response().unwrap().status, 200, "conn {i}");
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful shutdown must drain idle keep-alive connections promptly
/// under both cores. The keep-alive window is 60 s, so a prompt return
/// proves shutdown interrupts idle waits instead of sleeping them out —
/// the contract that replaced the old 50 ms polling slice.
#[test]
fn graceful_shutdown_drains_idle_connections_promptly_under_both_cores() {
    for core in [ServerCore::Reactor, ServerCore::ThreadPerConnection] {
        let dir = model_dir(
            match core {
                ServerCore::Reactor => "drain_reactor",
                ServerCore::ThreadPerConnection => "drain_thread",
            },
            &["m"],
        );
        let server: ServerHandle = start(
            ServerConfig::builder(&dir)
                .core(core)
                .threads(2)
                .keep_alive_timeout(Duration::from_secs(60))
                .build(),
        )
        .unwrap();
        let addr = server.addr();

        // One connection idles after a served request, one never sends
        // a byte: both flavors of idle must drain.
        let mut served = connect(addr);
        write_request(&mut served, "GET", "/healthz", "");
        let resp = ResponseReader::new(served.try_clone().unwrap())
            .next_response()
            .unwrap();
        assert_eq!(resp.status, 200, "{core:?}");
        let mut silent = connect(addr);

        let begin = Instant::now();
        server.shutdown();
        let took = begin.elapsed();
        assert!(
            took < Duration::from_secs(5),
            "{core:?} shutdown must not wait out the 60 s keep-alive \
             window, took {took:?}"
        );

        // Both idle connections were closed, not answered.
        let mut probe = [0u8; 1];
        assert_eq!(served.read(&mut probe).unwrap_or(0), 0, "{core:?}");
        assert_eq!(silent.read(&mut probe).unwrap_or(0), 0, "{core:?}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
