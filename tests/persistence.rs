//! Property-based and integration tests for the `p3gm-store` persistence
//! layer: arbitrary-shape round trips must be bitwise-identical, malformed
//! buffers must fail with typed errors (never panic), and a persisted
//! P3GM model must reproduce the in-memory model's samples bit-for-bit.

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::SynthesisSnapshot;
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::core::{DecoderLoss, VarianceMode};
use p3gm::linalg::Matrix;
use p3gm::mixture::Gmm;
use p3gm::nn::activation::Activation;
use p3gm::nn::mlp::Mlp;
use p3gm::preprocess::scaler::{MinMaxScaler, StandardScaler};
use p3gm::store::{crc32, StoreError, CHECKSUM_LEN, FORMAT_VERSION};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rebuilds the version field of a framed buffer and re-stamps a valid
/// checksum, so the decoder error is specifically the version check.
fn with_patched_version(bytes: &[u8], version: u32) -> Vec<u8> {
    let mut patched = bytes.to_vec();
    patched[4..8].copy_from_slice(&version.to_le_bytes());
    let body_len = patched.len() - CHECKSUM_LEN;
    let crc = crc32(&patched[..body_len]);
    let crc_bytes = crc.to_le_bytes();
    patched[body_len..].copy_from_slice(&crc_bytes);
    patched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matrix_round_trip_is_bitwise_identical(
        rows in 0usize..9,
        cols in 0usize..9,
        pool in proptest::collection::vec(-1e9..1e9f64, 64)
    ) {
        let n = rows * cols;
        let m = Matrix::from_vec(rows, cols, pool.iter().cycle().take(n).copied().collect())
            .unwrap();
        let back = Matrix::from_bytes(&m.to_bytes()).unwrap();
        prop_assert_eq!(back.shape(), m.shape());
        prop_assert_eq!(back.as_slice(), m.as_slice());
    }

    #[test]
    fn matrix_truncation_and_bit_flips_are_typed_errors(
        rows in 1usize..7,
        cols in 1usize..7,
        cut in 0.0..1.0f64,
        flip in 0.0..1.0f64,
        bit in 0usize..8
    ) {
        let m = Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| (i as f64 * 0.7).sin()).collect(),
        )
        .unwrap();
        let bytes = m.to_bytes();
        // Every proper prefix fails.
        let cut_at = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(Matrix::from_bytes(&bytes[..cut_at.min(bytes.len() - 1)]).is_err());
        // Every single-bit flip is caught (CRC-32 detects all 1-bit errors).
        let mut corrupted = bytes.clone();
        let pos = ((bytes.len() as f64) * flip) as usize % bytes.len();
        corrupted[pos] ^= 1 << bit;
        prop_assert!(Matrix::from_bytes(&corrupted).is_err());
    }

    #[test]
    fn mlp_round_trip_reproduces_forward_bitwise(
        seed in 0u64..1_000_000,
        input in 1usize..5,
        hidden in 1usize..7,
        output in 1usize..4
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            &mut rng,
            &[input, hidden, output],
            Activation::Relu,
            Activation::Identity,
        );
        let back = Mlp::from_bytes(&mlp.to_bytes()).unwrap();
        prop_assert_eq!(back.params(), mlp.params());
        let x: Vec<f64> = (0..input).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = mlp.forward(&x);
        let b = back.forward(&x);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gmm_round_trip_samples_bitwise(
        seed in 0u64..1_000_000,
        k in 1usize..4,
        dim in 1usize..4
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random weights and means; SPD covariances as B·Bᵀ + I/2.
        let weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.1..1.0)).collect();
        let means = Matrix::from_vec(
            k,
            dim,
            (0..k * dim).map(|_| rng.gen_range(-3.0..3.0)).collect(),
        )
        .unwrap();
        let covs: Vec<Matrix> = (0..k)
            .map(|_| {
                let b = Matrix::from_vec(
                    dim,
                    dim,
                    (0..dim * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                )
                .unwrap();
                let mut c = b.matmul(&b.transpose()).unwrap();
                c.add_diagonal(0.5);
                c
            })
            .collect();
        let gmm = Gmm::new(weights, means, covs).unwrap();
        let back = Gmm::from_bytes(&gmm.to_bytes()).unwrap();
        prop_assert_eq!(back.weights(), gmm.weights());
        let mut r1 = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..10 {
            prop_assert_eq!(gmm.sample(&mut r1), back.sample(&mut r2));
        }
        // Truncations never panic.
        let bytes = gmm.to_bytes();
        prop_assert!(Gmm::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn scaler_round_trips_are_bitwise(
        rows in 2usize..8,
        cols in 1usize..5,
        seed in 0u64..1_000_000
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-50.0..50.0)).collect(),
        )
        .unwrap();
        let minmax = MinMaxScaler::fit(&data).unwrap();
        let mm_back = MinMaxScaler::from_bytes(&minmax.to_bytes()).unwrap();
        prop_assert_eq!(mm_back.mins(), minmax.mins());
        prop_assert_eq!(mm_back.maxs(), minmax.maxs());
        prop_assert_eq!(
            mm_back.transform(&data).unwrap().as_slice(),
            minmax.transform(&data).unwrap().as_slice()
        );
        let standard = StandardScaler::fit(&data).unwrap();
        let st_back = StandardScaler::from_bytes(&standard.to_bytes()).unwrap();
        prop_assert_eq!(st_back.means(), standard.means());
        prop_assert_eq!(st_back.stds(), standard.stds());
    }
}

fn tiny_config(d: usize) -> PgmConfig {
    PgmConfig {
        latent_dim: 4.min(d),
        hidden_dim: 16,
        mog_components: 2,
        epochs: 3,
        batch_size: 16,
        learning_rate: 5e-3,
        clip_norm: 1.0,
        private: true,
        eps_p: 0.5,
        sigma_e: 50.0,
        em_iterations: 3,
        sigma_s: 1.0,
        delta: 1e-5,
        variance_mode: VarianceMode::Learned,
        decoder_loss: DecoderLoss::Bernoulli,
    }
}

fn trained_snapshot() -> (SynthesisSnapshot, PhasedGenerativeModel) {
    let mut rng = StdRng::seed_from_u64(33);
    let rows: Vec<Vec<f64>> = (0..90)
        .map(|i| {
            let hot = i % 2 == 0;
            (0..6)
                .map(|j| if (j < 3) == hot { 0.9 } else { 0.1 })
                .collect()
        })
        .collect();
    let features = Matrix::from_rows(&rows).unwrap();
    let labels: Vec<usize> = (0..90).map(|i| i % 2).collect();
    let (synth, prepared) = LabelledSynthesizer::prepare(&features, &labels, 2).unwrap();
    let (model, _) =
        PhasedGenerativeModel::fit(&mut rng, &prepared, tiny_config(prepared.cols())).unwrap();
    let snapshot = SynthesisSnapshot::capture(model.clone()).with_synthesizer(synth);
    (snapshot, model)
}

#[test]
fn saved_model_reproduces_in_memory_samples_bit_for_bit() {
    let (snapshot, model) = trained_snapshot();
    let loaded = SynthesisSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
    for seed in [0u64, 1, 42, u64::MAX] {
        // The never-persisted snapshot's canonical stream is the
        // reference; the loaded snapshot must reproduce it bit for bit —
        // serially, chunked, and in parallel.
        let direct = snapshot.sample(seed, 25);
        let served = loaded.sample(seed, 25);
        assert_eq!(direct.as_slice(), served.as_slice(), "seed {seed}");
        let parallel = loaded.sample_parallel(seed, 25);
        assert_eq!(direct.as_slice(), parallel.as_slice(), "seed {seed}");
        let chunked: Vec<f64> = loaded
            .sample_chunks(seed, 25, 7)
            .flat_map(|chunk| chunk.as_slice().to_vec())
            .collect();
        assert_eq!(direct.as_slice(), chunked.as_slice(), "seed {seed}");
    }
    // The privacy stamp and synthesizer survive the round trip.
    assert_eq!(
        loaded.privacy_stamp().copied(),
        model.training_privacy_spec()
    );
    assert!(loaded.synthesizer().is_some());
}

#[test]
fn snapshot_truncations_and_corruptions_never_panic() {
    let (snapshot, _) = trained_snapshot();
    let bytes = snapshot.to_bytes();
    for cut in (0..bytes.len()).step_by(97) {
        assert!(
            SynthesisSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "prefix {cut} accepted"
        );
    }
    for pos in (0..bytes.len()).step_by(131) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x55;
        assert!(
            SynthesisSnapshot::from_bytes(&corrupted).is_err(),
            "corruption at {pos} accepted"
        );
    }
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let (snapshot, _) = trained_snapshot();
    let bytes = snapshot.to_bytes();
    let future = with_patched_version(&bytes, FORMAT_VERSION + 3);
    assert_eq!(
        SynthesisSnapshot::from_bytes(&future).unwrap_err(),
        StoreError::UnsupportedVersion {
            found: FORMAT_VERSION + 3,
            supported: FORMAT_VERSION,
        }
    );
    // Wrong tag is equally typed: a snapshot buffer is not a matrix.
    assert!(matches!(
        Matrix::from_bytes(&bytes),
        Err(StoreError::WrongTag { .. })
    ));
}
