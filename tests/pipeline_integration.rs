//! Cross-crate integration tests: the full P3GM pipeline from raw dataset
//! to privately synthesized data and downstream evaluation.

use p3gm::classifiers::suite::evaluate_binary_suite;
use p3gm::core::config::{PgmConfig, VaeConfig};
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::synthesis::{synthesize_labelled, LabelledSynthesizer};
use p3gm::core::vae::Vae;
use p3gm::core::GenerativeModel;
use p3gm::datasets::tabular::{adult_like, kaggle_credit_like};
use p3gm::datasets::DatasetKind;
use p3gm::eval::common::{evaluate_tabular, make_dataset, stratified_split, GenerativeKind};
use p3gm::eval::Scale;
use p3gm::privacy::rdp::RdpAccountant;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_pgm_config(private: bool) -> PgmConfig {
    PgmConfig {
        latent_dim: 6,
        hidden_dim: 24,
        mog_components: 3,
        epochs: 4,
        batch_size: 32,
        em_iterations: 5,
        private,
        ..PgmConfig::default()
    }
}

#[test]
fn p3gm_end_to_end_produces_useful_private_synthetic_data() {
    let mut rng = StdRng::seed_from_u64(2024);
    let dataset = adult_like(&mut rng, 900);
    let split = dataset.train_test_split(&mut rng, 0.25);

    let (synth, prepared) = LabelledSynthesizer::prepare(
        &split.train.features,
        &split.train.labels,
        split.train.n_classes,
    )
    .unwrap();

    let (model, history) =
        PhasedGenerativeModel::fit(&mut rng, &prepared, small_pgm_config(true)).unwrap();
    assert_eq!(history.len(), 4);

    // The training run has a finite, positive privacy guarantee.
    let spec = model.training_privacy_spec().expect("P3GM is private");
    assert!(spec.epsilon > 0.0 && spec.epsilon.is_finite());

    // Synthesize with the real label ratio and evaluate on real test data.
    let counts = split.train.matched_label_counts(400);
    let (synth_x, synth_y) = synthesize_labelled(&model, &synth, &mut rng, &counts).unwrap();
    assert_eq!(synth_x.rows(), 400);
    assert_eq!(synth_x.cols(), split.train.n_features());

    let report =
        evaluate_binary_suite(&synth_x, &synth_y, &split.test.features, &split.test.labels);
    // Even a small noisy model should comfortably beat coin flipping on the
    // Adult-like data, where the classes are well separated.
    assert!(
        report.mean_auroc() > 0.55,
        "mean AUROC {} too close to chance",
        report.mean_auroc()
    );
}

#[test]
fn non_private_pgm_tracks_vae_quality() {
    // Table V's qualitative claim: PGM has similar expressive power to VAE.
    let mut rng = StdRng::seed_from_u64(77);
    let dataset = adult_like(&mut rng, 900);
    let split = dataset.train_test_split(&mut rng, 0.25);
    let (synth, prepared) = LabelledSynthesizer::prepare(
        &split.train.features,
        &split.train.labels,
        split.train.n_classes,
    )
    .unwrap();

    let (pgm, _) =
        PhasedGenerativeModel::fit(&mut rng, &prepared, small_pgm_config(false)).unwrap();
    let vae_cfg = VaeConfig {
        latent_dim: 6,
        hidden_dim: 24,
        epochs: 4,
        batch_size: 32,
        ..VaeConfig::default()
    };
    let (vae, _) = Vae::fit(&mut rng, &prepared, vae_cfg).unwrap();

    let counts = split.train.matched_label_counts(400);
    let evaluate = |model: &dyn GenerativeModel, rng: &mut StdRng| {
        let (x, y) = synthesize_labelled(model, &synth, rng, &counts).unwrap();
        evaluate_binary_suite(&x, &y, &split.test.features, &split.test.labels).mean_auroc()
    };
    let pgm_auroc = evaluate(&pgm, &mut rng);
    let vae_auroc = evaluate(&vae, &mut rng);
    // The two should be in the same ballpark (paper: "PGM has similar
    // expression power as VAE"); allow generous slack for the small scale.
    assert!(
        (pgm_auroc - vae_auroc).abs() < 0.3,
        "PGM {pgm_auroc} vs VAE {vae_auroc}"
    );
}

#[test]
fn imbalanced_credit_pipeline_preserves_label_ratio() {
    let mut rng = StdRng::seed_from_u64(5150);
    let dataset = kaggle_credit_like(&mut rng, 1500);
    assert!(dataset.positive_fraction() < 0.02);
    let (synth, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .unwrap();
    let (model, _) =
        PhasedGenerativeModel::fit(&mut rng, &prepared, small_pgm_config(true)).unwrap();
    let counts = dataset.matched_label_counts(500);
    let (_, labels) = synthesize_labelled(&model, &synth, &mut rng, &counts).unwrap();
    let positives = labels.iter().filter(|&&l| l == 1).count();
    // The synthesis protocol enforces the requested (rare-positive) ratio.
    assert_eq!(positives, counts[1]);
    assert!(positives >= 1);
    assert!(positives < 25, "positives {positives} should stay rare");
}

#[test]
fn harness_private_models_agree_with_direct_pipeline() {
    // The eval harness wraps the same components; a quick consistency check
    // that its P3GM cell produces scores in a sane range on Adult.
    let mut rng = StdRng::seed_from_u64(31);
    let adult = make_dataset(&mut rng, DatasetKind::Adult, Scale::Smoke);
    let split = stratified_split(&mut rng, &adult, 0.25);
    let report = evaluate_tabular(
        &mut rng,
        GenerativeKind::P3gm,
        &split.train,
        &split.test,
        Scale::Smoke,
        1.0,
    );
    // At smoke scale the private model is noisy, so only basic sanity of the
    // harness output is asserted here; the paper-scale ordering is checked by
    // the bench harness and recorded in EXPERIMENTS.md.
    assert!(report.mean_auroc().is_finite() && (0.0..=1.0).contains(&report.mean_auroc()));
    assert!(report.mean_auprc().is_finite() && (0.0..=1.0).contains(&report.mean_auprc()));
}

#[test]
fn theorem4_accounting_matches_model_report() {
    // The epsilon the model reports must equal the accountant evaluated on
    // the same schedule — no hidden budget.
    let mut rng = StdRng::seed_from_u64(99);
    let dataset = adult_like(&mut rng, 600);
    let (_, prepared) =
        LabelledSynthesizer::prepare(&dataset.features, &dataset.labels, dataset.n_classes)
            .unwrap();
    let cfg = small_pgm_config(true);
    let n = prepared.rows();
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, cfg.clone()).unwrap();
    let reported = model.privacy_spec(n).unwrap();
    let direct = RdpAccountant::p3gm_total(
        cfg.eps_p,
        cfg.em_iterations,
        cfg.sigma_e,
        cfg.mog_components,
        cfg.sgd_steps(n),
        cfg.sampling_probability(n),
        cfg.sigma_s,
        cfg.delta,
    )
    .unwrap();
    assert!((reported.epsilon - direct.epsilon).abs() < 1e-12);
    assert_eq!(reported.optimal_order, direct.optimal_order);
}
