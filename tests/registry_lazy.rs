//! Integration tests for the lazy, size-budgeted model registry: headers
//! peeked at scan time agree with the full checksummed decode, weights
//! load on first request only (single-flight under concurrency), LRU
//! eviction under `max_resident_bytes` never disturbs an in-flight
//! streamed response (bytes stay identical to eager serving), and a
//! corrupt-on-first-touch snapshot surfaces as a typed 503 that
//! un-poisons itself once the file is repaired and reloaded.

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::{SnapshotHeader, SynthesisSnapshot};
use p3gm::core::synthesis::LabelledSynthesizer;
use p3gm::core::{DecoderLoss, VarianceMode};
use p3gm::linalg::Matrix;
use p3gm::server::http::ResponseReader;
use p3gm::server::registry::{Registry, RegistryConfig, RegistryError};
use p3gm::server::{json, start, ServerConfig, ServerHandle};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// Trains the shared (tiny) test model once.
fn trained_snapshot() -> &'static SynthesisSnapshot {
    static SNAPSHOT: OnceLock<SynthesisSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| train_snapshot(7, true, true, 3, 12, 2))
}

/// Trains one small snapshot with the given knobs — the generator for
/// "arbitrary valid snapshot" properties.
fn train_snapshot(
    seed: u64,
    private: bool,
    with_synth: bool,
    latent_dim: usize,
    hidden_dim: usize,
    epochs: usize,
) -> SynthesisSnapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            (0..5)
                .map(|j| {
                    let base = if (i + j) % 2 == 0 { 0.8 } else { 0.2 };
                    (base + p3gm::privacy::sampling::normal(&mut rng, 0.0, 0.05)).clamp(0.0, 1.0)
                })
                .collect()
        })
        .collect();
    let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
    let features = Matrix::from_rows(&rows).unwrap();
    let (synth, prepared) = LabelledSynthesizer::prepare(&features, &labels, 2).unwrap();
    let config = PgmConfig {
        latent_dim,
        hidden_dim,
        mog_components: 2,
        epochs,
        batch_size: 16,
        learning_rate: 5e-3,
        clip_norm: 1.0,
        private,
        eps_p: 0.5,
        sigma_e: 50.0,
        em_iterations: 3,
        sigma_s: 1.0,
        delta: 1e-5,
        variance_mode: VarianceMode::Learned,
        decoder_loss: DecoderLoss::Bernoulli,
    };
    let (model, _) = PhasedGenerativeModel::fit(&mut rng, &prepared, config).unwrap();
    let snapshot = SynthesisSnapshot::capture(model);
    if with_synth {
        snapshot.with_synthesizer(synth)
    } else {
        snapshot
    }
}

/// A fresh model directory containing the shared snapshot under each
/// given name.
fn model_dir(test: &str, names: &[&str]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p3gm_lazy_it_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for name in names {
        std::fs::write(
            dir.join(format!("{name}.snapshot")),
            trained_snapshot().to_bytes(),
        )
        .unwrap();
    }
    dir
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

fn write_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
}

/// One fresh-connection request; returns (status, de-chunked body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = connect(addr);
    write_request(&mut stream, method, path, body);
    let response = ResponseReader::new(stream).next_response().unwrap();
    (response.status, String::from_utf8(response.body).unwrap())
}

/// Polls `server.registry_stats()` until `pred` holds (bounded).
fn wait_for_stats(
    server: &ServerHandle,
    pred: impl Fn(p3gm::server::registry::RegistryStats) -> bool,
    what: &str,
) {
    for _ in 0..600 {
        if pred(server.registry_stats()) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "timed out waiting for {what}: {:?}",
        server.registry_stats()
    );
}

#[test]
fn startup_registers_headers_without_decoding_any_weights() {
    let names: Vec<String> = (0..20).map(|i| format!("tenant-{i:02}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let dir = model_dir("lazy_startup", &name_refs);
    let server = start(ServerConfig::builder(&dir).build()).unwrap();
    let addr = server.addr();

    // All 20 models are registered and listable...
    assert_eq!(server.model_count(), 20);
    let (status, body) = request(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    let listed = json::parse(&body).unwrap();
    let models = listed.get("models").unwrap().as_arr().unwrap();
    assert_eq!(models.len(), 20);
    for entry in models {
        assert_eq!(
            entry.get("resident").and_then(json::Json::as_bool),
            Some(false),
            "a never-sampled model must not be resident"
        );
        assert!(entry.get("privacy").unwrap().get("epsilon").is_some());
    }
    // ...and the detail endpoint serves geometry from the header too.
    let (status, body) = request(addr, "GET", "/models/tenant-07", "");
    assert_eq!(status, 200);
    let detail = json::parse(&body).unwrap();
    assert_eq!(
        detail.get("data_dim").and_then(json::Json::as_u64),
        Some(trained_snapshot().model().data_dim() as u64)
    );

    // None of that decoded a single weight payload.
    let stats = server.registry_stats();
    assert_eq!((stats.loads, stats.resident_models), (0, 0), "{stats:?}");

    // First sampling request loads exactly that one model.
    let (status, _) = request(
        addr,
        "POST",
        "/models/tenant-03/sample",
        r#"{"seed": 1, "n": 4}"#,
    );
    assert_eq!(status, 200);
    let stats = server.registry_stats();
    assert_eq!((stats.loads, stats.resident_models), (1, 1), "{stats:?}");

    // GET /stats mirrors the counters over HTTP.
    let (status, body) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    assert_eq!(parsed.get("models").and_then(json::Json::as_u64), Some(20));
    assert_eq!(parsed.get("loads").and_then(json::Json::as_u64), Some(1));
    assert_eq!(
        parsed.get("header_peeks").and_then(json::Json::as_u64),
        Some(20),
        "startup peeks each snapshot's header exactly once"
    );
    let (status, _) = request(addr, "POST", "/stats", "");
    assert_eq!(status, 405);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `POST /reload` is incremental: directory entries are read once and
/// only snapshots whose `(len, mtime)` fingerprint changed are re-peeked
/// from disk — a no-change reload over many tenants performs **zero**
/// header reads, observable via the `header_peeks` counter in `/stats`.
#[test]
fn reload_repeeks_only_changed_snapshots() {
    let dir = model_dir("peek_batch", &["a", "b", "c"]);
    let (registry, report) = Registry::open(&dir).unwrap();
    assert_eq!(report.loaded.len(), 3);
    assert_eq!(registry.stats().header_peeks, 3);

    // No-change reloads keep every entry and peek nothing.
    for _ in 0..3 {
        let report = registry.reload().unwrap();
        assert_eq!(report.unchanged.len(), 3, "{report:?}");
        assert!(report.loaded.is_empty() && report.removed.is_empty());
    }
    assert_eq!(
        registry.stats().header_peeks,
        3,
        "unchanged files must not be re-peeked"
    );

    // Replace one snapshot with a different (longer) one: exactly that
    // file is re-peeked, the other two are untouched.
    let old_cost = registry.header("b").unwrap().approx_resident_bytes();
    let bigger = train_snapshot(11, true, true, 3, 16, 2);
    std::fs::write(dir.join("b.snapshot"), bigger.to_bytes()).unwrap();
    let report = registry.reload().unwrap();
    assert_eq!(report.loaded, vec!["b".to_string()], "{report:?}");
    assert_eq!(report.unchanged.len(), 2);
    assert_eq!(registry.stats().header_peeks, 4);

    // The re-registered entry serves the new (wider) model's header.
    let new_cost = registry.header("b").unwrap().approx_resident_bytes();
    assert!(new_cost > old_cost, "{new_cost} vs {old_cost}");

    // Deleting a file needs no peek either.
    std::fs::remove_file(dir.join("c.snapshot")).unwrap();
    let report = registry.reload().unwrap();
    assert_eq!(report.removed, vec!["c".to_string()], "{report:?}");
    assert_eq!(registry.stats().header_peeks, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_first_requests_share_a_single_decode() {
    let dir = model_dir("single_flight", &["m"]);
    let (registry, _) = Registry::open_with(&dir, RegistryConfig::default()).unwrap();
    assert_eq!(registry.stats().loads, 0);

    let barrier = std::sync::Barrier::new(8);
    let handles: Vec<_> = std::thread::scope(|s| {
        let registry = &registry;
        let barrier = &barrier;
        (0..8)
            .map(|_| {
                s.spawn(move || {
                    barrier.wait();
                    registry.get("m").unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    // Everyone got the same decoded model, from exactly one decode.
    for handle in &handles[1..] {
        assert!(std::sync::Arc::ptr_eq(&handles[0], handle));
    }
    let stats = registry.stats();
    assert_eq!(stats.loads, 1, "{stats:?}");
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits, 7, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn header_listing_agrees_with_the_loaded_model() {
    let dir = model_dir("header_agrees", &["m"]);
    let (registry, _) = Registry::open_with(&dir, RegistryConfig::default()).unwrap();
    let header = registry.header("m").unwrap();
    let model = registry.get("m").unwrap();
    let snapshot = model.snapshot();
    assert_eq!(header.data_dim(), snapshot.model().data_dim());
    assert_eq!(header.latent_dim(), snapshot.model().config().latent_dim);
    assert_eq!(
        header.n_classes(),
        snapshot.synthesizer().map(|s| s.n_classes())
    );
    let (peeked, full) = (header.stamp().unwrap(), snapshot.privacy_stamp().unwrap());
    assert_eq!(peeked.epsilon.to_bits(), full.epsilon.to_bits());
    assert_eq!(peeked.delta.to_bits(), full.delta.to_bits());
    assert!(header.approx_resident_bytes() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_under_concurrent_sampling_keeps_streams_intact() {
    let dir = model_dir("evict_stream", &["a", "b"]);
    let cost = SnapshotHeader::peek(&trained_snapshot().to_bytes())
        .unwrap()
        .approx_resident_bytes();
    // Budget for exactly one resident model: loading "b" evicts "a".
    let server = start(
        ServerConfig::builder(&dir)
            .ledger_path(None)
            .max_resident_bytes(Some(cost))
            .build(),
    )
    .unwrap();
    let addr = server.addr();

    // Open a large streamed download of "a" and do NOT read it yet: the
    // server generates chunks as the socket drains, so the response
    // stays in flight holding its Arc<LoadedModel>.
    let body = r#"{"seed": 5, "n": 30000, "format": "csv"}"#;
    let mut stream = connect(addr);
    write_request(&mut stream, "POST", "/models/a/sample", body);
    wait_for_stats(&server, |s| s.loads >= 1, "model a to load");

    // Loading "b" pushes residency past the budget and evicts "a"
    // (least recently used) while its stream is mid-flight.
    let (status, _) = request(addr, "POST", "/models/b/sample", r#"{"seed": 2, "n": 8}"#);
    assert_eq!(status, 200);
    wait_for_stats(&server, |s| s.evictions >= 1, "an eviction");

    // The in-flight stream still completes, and its de-chunked bytes are
    // identical to serving the same request fresh (which re-decodes the
    // evicted file): eviction is invisible to both.
    let streamed = ResponseReader::new(stream).next_response().unwrap();
    assert_eq!(streamed.status, 200);
    assert!(streamed.chunked);
    let streamed_body = String::from_utf8(streamed.body).unwrap();
    assert_eq!(streamed_body.lines().count(), 30000);
    let (status, fresh) = request(addr, "POST", "/models/a/sample", body);
    assert_eq!(status, 200);
    assert_eq!(
        streamed_body, fresh,
        "bytes must be identical across eviction + reload"
    );

    let stats = server.registry_stats();
    assert!(stats.evictions >= 1, "{stats:?}");
    assert!(
        stats.resident_bytes <= cost,
        "residency must settle within the budget: {stats:?}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_first_touch_is_a_typed_503_and_repair_unpoisons() {
    let dir = model_dir("corrupt_touch", &["good", "bad"]);
    let clean = std::fs::read(dir.join("bad.snapshot")).unwrap();
    // Flip one bit deep inside the weight payloads: the header peek
    // (leading frames only) cannot see it, so the model registers and
    // lists fine — but the full checksummed decode on first touch must
    // catch it.
    let mut corrupt = clean.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    std::fs::write(dir.join("bad.snapshot"), &corrupt).unwrap();

    let server = start(ServerConfig::builder(&dir).ledger_path(None).build()).unwrap();
    let addr = server.addr();
    assert_eq!(server.model_count(), 2, "corruption is invisible to peek");

    // First touch: typed 503 with a JSON error body, not a 404 or 500.
    let body = r#"{"seed": 3, "n": 4}"#;
    let (status, text) = request(addr, "POST", "/models/bad/sample", body);
    assert_eq!(status, 503, "{text}");
    let parsed = json::parse(&text).unwrap();
    assert!(parsed
        .get("error")
        .and_then(json::Json::as_str)
        .unwrap()
        .contains("decode"));

    // The failure is cached: a second touch answers 503 again without
    // re-decoding the known-bad file.
    let (status, _) = request(addr, "POST", "/models/bad/sample", body);
    assert_eq!(status, 503);
    let stats = server.registry_stats();
    assert_eq!(stats.load_failures, 1, "failure cached, not re-tried");

    // The good model is unaffected throughout.
    let (status, _) = request(addr, "POST", "/models/good/sample", body);
    assert_eq!(status, 200);

    // Repair the file and hot-reload: the fresh fingerprint replaces the
    // poisoned entry, and the very next request serves.
    std::thread::sleep(Duration::from_millis(20));
    std::fs::write(dir.join("bad.snapshot"), &clean).unwrap();
    let (status, _) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 200);
    // CSV bodies carry no model name, so identical snapshot bytes must
    // serve byte-identical responses.
    let csv_body = r#"{"seed": 3, "n": 4, "format": "csv"}"#;
    let (status, repaired) = request(addr, "POST", "/models/bad/sample", csv_body);
    assert_eq!(status, 200);
    let (_, good) = request(addr, "POST", "/models/good/sample", csv_body);
    assert_eq!(
        repaired, good,
        "identical snapshot bytes must serve identical samples"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_get_errors_are_typed() {
    let dir = model_dir("typed_errors", &["m"]);
    let (registry, _) = Registry::open_with(&dir, RegistryConfig::default()).unwrap();
    assert!(matches!(
        registry.get("absent"),
        Err(RegistryError::NotFound)
    ));
    assert!(registry.get("m").is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Header-vs-full-decode agreement on arbitrary valid snapshots:
    /// whatever the training knobs, the peeked geometry, class count and
    /// recomputed (ε, δ) stamp match the checksummed decode bit-for-bit,
    /// and peeking any prefix either agrees or fails typed (no panic).
    #[test]
    fn header_peek_agrees_with_full_decode_on_arbitrary_snapshots(
        seed in 0u64..1000,
        private in any::<bool>(),
        with_synth in any::<bool>(),
        latent_dim in 2usize..4,
        hidden_dim in 4usize..10,
        cut in 0.0..1.0f64,
    ) {
        let snapshot = train_snapshot(seed, private, with_synth, latent_dim, hidden_dim, 1);
        let bytes = snapshot.to_bytes();
        let header = SnapshotHeader::peek(&bytes).unwrap();
        let full = SynthesisSnapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(header.data_dim, full.model().data_dim());
        prop_assert_eq!(header.config.latent_dim, latent_dim);
        prop_assert_eq!(header.n_classes, full.synthesizer().map(|s| s.n_classes()));
        match (header.stamp.as_ref(), full.privacy_stamp()) {
            (Some(peeked), Some(stamped)) => {
                prop_assert_eq!(peeked.epsilon.to_bits(), stamped.epsilon.to_bits());
                prop_assert_eq!(peeked.delta.to_bits(), stamped.delta.to_bits());
            }
            (None, None) => prop_assert!(!private),
            (peeked, stamped) => {
                prop_assert!(false, "stamp mismatch: {:?} vs {:?}", peeked, stamped);
            }
        }
        prop_assert_eq!(header.framed_len as usize, bytes.len());

        // An arbitrary prefix never panics: it either yields the same
        // header or a typed store error.
        let cut_at = ((bytes.len() as f64) * cut) as usize;
        if let Ok(partial) = SnapshotHeader::peek(&bytes[..cut_at.min(bytes.len())]) {
            prop_assert_eq!(partial.data_dim, header.data_dim);
            prop_assert_eq!(partial.n_train, header.n_train);
        }
    }
}
