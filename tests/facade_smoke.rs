//! Smoke test for the workspace wiring itself: every facade re-export must
//! resolve and expose its expected entry points, so a broken crate graph is
//! caught even before any numerical test runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn facade_reexports_resolve() {
    // One symbol from every re-exported member crate.
    let m = p3gm::linalg::Matrix::zeros(2, 3);
    assert_eq!(m.shape(), (2, 3));

    let mut rng = StdRng::seed_from_u64(1);
    let mlp = p3gm::nn::mlp::Mlp::new(
        &mut rng,
        &[2, 4, 1],
        p3gm::nn::activation::Activation::Relu,
        p3gm::nn::activation::Activation::Identity,
    );
    assert_eq!(mlp.out_dim(), 1);

    let mut acc = p3gm::privacy::zcdp::ZcdpAccountant::new();
    acc.add_rho(0.1).unwrap();
    assert!(acc.rho() > 0.0);

    let scaler_err =
        p3gm::preprocess::scaler::MinMaxScaler::fit(&p3gm::linalg::Matrix::zeros(0, 0));
    assert!(scaler_err.is_err());

    let gmm = p3gm::mixture::Gmm::isotropic(
        vec![1.0],
        p3gm::linalg::Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap(),
        1.0,
    )
    .unwrap();
    assert_eq!(gmm.n_components(), 1);

    assert!(p3gm::parallel::max_threads() >= 1);

    let data = p3gm::datasets::tabular::adult_like(&mut rng, 50);
    assert_eq!(data.n_samples(), 50);

    let auroc = p3gm::classifiers::metrics::auroc(&[0.1, 0.9], &[0, 1]);
    assert!((auroc - 1.0).abs() < 1e-12);

    let cfg = p3gm::core::PgmConfig::default();
    assert!(cfg.private);

    // Baselines and eval expose their top-level types.
    let _kind: p3gm::eval::Scale = p3gm::eval::Scale::Smoke;
    let privbayes_err = p3gm::baselines::privbayes::PrivBayes::fit(
        &mut rng,
        &p3gm::linalg::Matrix::zeros(0, 0),
        Default::default(),
    );
    assert!(privbayes_err.is_err());
}

#[test]
fn vendored_rand_is_usable_through_the_facade() {
    // The examples and docs rely on the vendored `rand` API surface.
    let mut rng = StdRng::seed_from_u64(7);
    let x: f64 = rng.gen_range(0.0..1.0);
    assert!((0.0..1.0).contains(&x));
    let i: usize = rng.gen_range(0..10);
    assert!(i < 10);
    assert!([true, false].contains(&rng.gen_bool(0.5)));
}
