//! Property-based determinism tests for the `p3gm-parallel` execution
//! layer: every parallel kernel must produce **bit-identical** output
//! regardless of the worker-thread count (the serial `P3GM_THREADS=1` run
//! is the reference). Exercised on arbitrary inputs for the kernel
//! families the pipeline spends its time in — matmul and its transposed
//! variant, gram, the (DP-)EM batched log-densities and responsibilities
//! E-step, the batched MLP forward, and the DP-SGD clipped gradient sum
//! and per-example gradient batch — plus
//! the snapshot sampling pipeline, whose canonical stream must be
//! invariant to delivery chunking, request size and thread count alike.

use p3gm::core::config::PgmConfig;
use p3gm::core::pgm::PhasedGenerativeModel;
use p3gm::core::snapshot::SynthesisSnapshot;
use p3gm::linalg::Matrix;
use p3gm::mixture::Gmm;
use p3gm::nn::activation::Activation;
use p3gm::nn::mlp::Mlp;
use p3gm::parallel::with_threads;
use p3gm::privacy::mechanisms::clip_and_sum_gradients;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A tiny trained snapshot, fitted once (the sampling-path fixture).
fn snapshot_fixture() -> &'static SynthesisSnapshot {
    static SNAPSHOT: OnceLock<SynthesisSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let data = Matrix::from_fn(48, 5, |i, j| {
            0.5 + 0.4 * (((i * 5 + j) as f64) * 0.37).sin()
        });
        let config = PgmConfig {
            latent_dim: 2,
            hidden_dim: 8,
            mog_components: 2,
            epochs: 1,
            batch_size: 16,
            em_iterations: 2,
            ..PgmConfig::default()
        };
        let (model, _) = PhasedGenerativeModel::fit(&mut rng, &data, config).unwrap();
        SynthesisSnapshot::capture(model)
    })
}

/// Strategy: a data matrix with values in a bounded range.
fn data_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |values| Matrix::from_vec(rows, cols, values).unwrap())
}

/// Asserts that every f64 of two equally-shaped matrices matches bitwise.
fn assert_bits_equal(a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_is_bit_identical_across_thread_counts(
        a in data_matrix(37, 19),
        b in data_matrix(19, 23),
    ) {
        let reference = with_threads(1, || a.matmul(&b).unwrap());
        for threads in [2, 3, 4, 8] {
            let out = with_threads(threads, || a.matmul(&b).unwrap());
            assert_bits_equal(&out, &reference);
        }
    }

    #[test]
    fn matmul_transposed_is_bit_identical_across_thread_counts(
        a in data_matrix(41, 17),
        b in data_matrix(29, 17),
    ) {
        let reference = with_threads(1, || a.matmul_transposed(&b).unwrap());
        for threads in [2, 3, 4, 8] {
            let out = with_threads(threads, || a.matmul_transposed(&b).unwrap());
            assert_bits_equal(&out, &reference);
        }
    }

    #[test]
    fn gram_is_bit_identical_across_thread_counts(
        a in data_matrix(83, 13),
    ) {
        let reference = with_threads(1, || a.gram());
        for threads in [2, 3, 4, 8] {
            let out = with_threads(threads, || a.gram());
            assert_bits_equal(&out, &reference);
        }
    }

    #[test]
    fn em_log_densities_are_bit_identical_across_thread_counts(
        data in data_matrix(110, 3),
        w in 0.1..0.9f64,
    ) {
        let means = Matrix::from_rows(&[
            vec![-1.0, 0.0, 0.5],
            vec![1.5, 0.5, -0.5],
        ]).unwrap();
        let gmm = Gmm::isotropic(vec![w, 1.0 - w], means, 0.7).unwrap();
        let reference = with_threads(1, || gmm.log_densities_batch(&data));
        for threads in [2, 4] {
            let out = with_threads(threads, || gmm.log_densities_batch(&data));
            assert_bits_equal(&out, &reference);
        }
    }

    #[test]
    fn forward_batch_is_bit_identical_across_thread_counts(
        x in data_matrix(45, 6),
        seed in 0u64..1_000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&mut rng, &[6, 10, 4], Activation::Relu, Activation::Sigmoid);
        let reference = with_threads(1, || mlp.forward_batch(&x));
        for threads in [2, 4] {
            let out = with_threads(threads, || mlp.forward_batch(&x));
            assert_bits_equal(&out, &reference);
        }
    }

    #[test]
    fn em_responsibilities_are_bit_identical_across_thread_counts(
        data in data_matrix(120, 3),
        w in 0.1..0.9f64,
    ) {
        let means = Matrix::from_rows(&[
            vec![-1.0, 0.0, 0.5],
            vec![1.5, 0.5, -0.5],
        ]).unwrap();
        let gmm = Gmm::isotropic(vec![w, 1.0 - w], means, 0.7).unwrap();
        let reference = with_threads(1, || gmm.responsibilities_batch(&data));
        for threads in [2, 4] {
            let resp = with_threads(threads, || gmm.responsibilities_batch(&data));
            assert_bits_equal(&resp, &reference);
        }
        // The mean log-likelihood reduction is deterministic too.
        let ll = with_threads(1, || gmm.mean_log_likelihood(&data));
        for threads in [2, 4] {
            let ll_t = with_threads(threads, || gmm.mean_log_likelihood(&data));
            prop_assert_eq!(ll.to_bits(), ll_t.to_bits());
        }
    }

    #[test]
    fn clipped_gradient_sums_are_bit_identical_across_thread_counts(
        grads in data_matrix(90, 31),
        clip in 0.2..5.0f64,
    ) {
        let reference = with_threads(1, || clip_and_sum_gradients(&grads, clip));
        for threads in [2, 3, 4] {
            let sum = with_threads(threads, || clip_and_sum_gradients(&grads, clip));
            prop_assert_eq!(sum.len(), reference.len());
            for (x, y) in sum.iter().zip(reference.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn per_example_gradient_batches_are_bit_identical_across_thread_counts(
        x in data_matrix(40, 6),
        seed in 0u64..1_000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&mut rng, &[6, 10, 4], Activation::Relu, Activation::Identity);
        let gouts = Matrix::from_fn(40, 4, |i, j| ((i * 4 + j) as f64 * 0.1).sin());
        let reference = with_threads(1, || mlp.per_example_gradients(&x, &gouts));
        for threads in [2, 4] {
            let batch = with_threads(threads, || mlp.per_example_gradients(&x, &gouts));
            assert_bits_equal(&batch, &reference);
        }
    }

    /// The snapshot's canonical sample stream: for any (seed, n, chunk
    /// size), the chunked iterator's concatenation, the serial sample,
    /// and the parallel sample are all bit-identical at every thread
    /// count — and a shorter request is a row-prefix of a longer one.
    #[test]
    fn snapshot_sampling_is_chunk_and_thread_invariant(
        seed in 0u64..1_000_000,
        n in 1usize..220,
        chunk_rows in 1usize..140,
    ) {
        let snapshot = snapshot_fixture();
        let reference = with_threads(1, || snapshot.sample(seed, n));
        let mut chunked: Vec<f64> = Vec::with_capacity(reference.as_slice().len());
        for chunk in snapshot.sample_chunks(seed, n, chunk_rows) {
            chunked.extend_from_slice(chunk.as_slice());
        }
        prop_assert_eq!(chunked.len(), reference.as_slice().len());
        for (x, y) in chunked.iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for threads in [1, 2, 4] {
            let parallel = with_threads(threads, || snapshot.sample_parallel(seed, n));
            assert_bits_equal(&parallel, &reference);
        }
        // Prefix stability: the stream does not depend on n.
        let shorter = snapshot.sample(seed, n / 2);
        let d = reference.cols();
        for (x, y) in shorter
            .as_slice()
            .iter()
            .zip(&reference.as_slice()[..(n / 2) * d])
        {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
