//! Microkernel correctness: every register-tiled / lane-folded kernel must
//! match a retained naive scalar reference over arbitrary shapes, including
//! ragged tails smaller than one tile.
//!
//! Two classes of agreement are asserted:
//!
//! * **Bitwise** where the tiling preserves the scalar accumulation order.
//!   `Matrix::matmul` register tiles reorder the *loop nest*, but every
//!   output element still sums its `k` terms with one accumulator in
//!   strictly increasing `k` order — exactly the naive i-k-j triple loop —
//!   so the comparison is `to_bits` equality. Likewise `matmul_transposed`
//!   is defined as `vector::dot_lanes` per element, and a batched MLP
//!   forward row is defined as the single-example forward.
//! * **Error-bounded** where a kernel deliberately uses a different — but
//!   still fixed — summation order (lane folds, chunked reductions). Any
//!   two summation orders of the terms `t_i` differ by at most
//!   `2 (n-1) ε Σ|t_i|` to first order, so the tolerance scales with the
//!   sum of absolute terms — a tight ULP-level bound that still fails
//!   loudly on genuine kernel bugs.

use p3gm::linalg::{vector, Matrix};
use p3gm::mixture::Gmm;
use p3gm::nn::activation::Activation;
use p3gm::nn::mlp::Mlp;
use p3gm::privacy::mechanisms::clip_and_sum_gradients;
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and bounded values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |values| Matrix::from_vec(rows, cols, values).unwrap())
}

/// Naive scalar reference: i-k-j matmul with one accumulator per output
/// element in increasing-k order (what the tiled kernel must reproduce
/// bit for bit).
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// First-order bound on the difference between two fixed summation orders
/// of the same terms: `2 (n-1) ε Σ|t_i|`, padded with a tiny absolute term
/// for sums near zero.
fn reorder_tol(n_terms: usize, abs_sum: f64) -> f64 {
    2.0 * n_terms as f64 * f64::EPSILON * abs_sum + 1e-300
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The register-tiled matmul is bit-identical to the naive scalar
    /// triple loop on arbitrary shapes (tiling never splits the k
    /// accumulation).
    #[test]
    fn matmul_matches_naive_bitwise(m in 1usize..40, k in 1usize..24, n in 1usize..40, seed in 0u64..1_000) {
        let a = Matrix::from_fn(m, k, |i, j| (((seed + 1) as f64) * ((i * k + j + 1) as f64) * 0.13).sin() * 5.0);
        let b = Matrix::from_fn(k, n, |i, j| (((seed + 7) as f64) * ((i * n + j + 1) as f64) * 0.29).cos() * 5.0);
        let tiled = a.matmul(&b).unwrap();
        let reference = naive_matmul(&a, &b);
        for (x, y) in tiled.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// `matmul_transposed` is, per element, exactly the lane-folded dot of
    /// the two rows — and within a reordering bound of the naive
    /// sequential dot.
    #[test]
    fn matmul_transposed_matches_lane_dot_and_naive(m in 1usize..40, k in 1usize..24, n in 1usize..40, seed in 0u64..1_000) {
        let a = Matrix::from_fn(m, k, |i, j| (((seed + 3) as f64) * ((i * k + j + 1) as f64) * 0.17).sin() * 5.0);
        let b = Matrix::from_fn(n, k, |i, j| (((seed + 11) as f64) * ((i * k + j + 1) as f64) * 0.23).cos() * 5.0);
        let out = a.matmul_transposed(&b).unwrap();
        prop_assert_eq!(out.shape(), (m, n));
        for i in 0..m {
            for j in 0..n {
                let lanes = vector::dot_lanes(a.row(i), b.row(j));
                prop_assert_eq!(out.get(i, j).to_bits(), lanes.to_bits());
                let naive = vector::dot(a.row(i), b.row(j));
                let abs_sum: f64 = a.row(i).iter().zip(b.row(j)).map(|(x, y)| (x * y).abs()).sum();
                prop_assert!((lanes - naive).abs() <= reorder_tol(k, abs_sum));
            }
        }
    }

    /// The tiled upper-triangle + mirror gram kernel matches the naive
    /// full `AᵀA` within the chunked-reduction reordering bound, and is
    /// exactly symmetric.
    #[test]
    fn gram_matches_naive(a in matrix(37, 13)) {
        let gram = a.gram();
        for j in 0..a.cols() {
            for l in 0..a.cols() {
                prop_assert_eq!(gram.get(j, l).to_bits(), gram.get(l, j).to_bits());
                let naive: f64 = (0..a.rows()).map(|i| a.get(i, j) * a.get(i, l)).sum();
                let abs_sum: f64 = (0..a.rows()).map(|i| (a.get(i, j) * a.get(i, l)).abs()).sum();
                prop_assert!((gram.get(j, l) - naive).abs() <= reorder_tol(a.rows(), abs_sum));
            }
        }
    }

    /// The lane-folded dot/norm kernels match their sequential references
    /// within the reordering bound, on lengths straddling the lane width.
    #[test]
    fn lane_kernels_match_sequential(values in proptest::collection::vec(-10.0..10.0f64, 140), len in 1usize..70) {
        let a: Vec<f64> = values[..len].to_vec();
        let b: Vec<f64> = values[len..2 * len].to_vec();
        let abs_dot: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        prop_assert!((vector::dot_lanes(&a, &b) - vector::dot(&a, &b)).abs() <= reorder_tol(a.len(), abs_dot));
        // Norms have non-negative terms: same bound, no cancellation slack needed.
        prop_assert!(
            (vector::norm2_squared_lanes(&a) - vector::norm2_squared(&a)).abs()
                <= reorder_tol(a.len(), vector::norm2_squared(&a))
        );
        prop_assert!(
            (vector::squared_distance_lanes(&a, &b) - vector::squared_distance(&a, &b)).abs()
                <= reorder_tol(a.len(), vector::squared_distance(&a, &b))
        );
    }

    /// The fused clip-and-sum matches the naive per-row copy → clip → add
    /// reference: per-row clip factors agree to a few ULPs and the chunked
    /// sum reorders, so each component carries a reordering bound scaled
    /// by the absolute column mass.
    #[test]
    fn clip_and_sum_matches_naive(grads in matrix(53, 9), clip in 0.2..5.0f64) {
        let fused = clip_and_sum_gradients(&grads, clip);
        let mut reference = vec![0.0f64; grads.cols()];
        let mut abs_mass = vec![0.0f64; grads.cols()];
        for i in 0..grads.rows() {
            let mut row = grads.row(i).to_vec();
            vector::clip_norm(&mut row, clip);
            for (j, &v) in row.iter().enumerate() {
                reference[j] += v;
                abs_mass[j] += v.abs();
            }
        }
        for j in 0..grads.cols() {
            // The lane-folded norm perturbs each row's clip factor by
            // O(d·ε) relatively, then the chunked sum reorders: both
            // effects stay within the reordering bound over the clipped
            // column mass (with the norm's d terms included).
            let tol = reorder_tol(grads.rows() + grads.cols(), abs_mass[j]);
            prop_assert!(
                (fused[j] - reference[j]).abs() <= tol,
                "column {}: fused {} vs naive {} (tol {})", j, fused[j], reference[j], tol
            );
        }
    }

    /// The batched E-step matches the naive per-row, per-component
    /// reference (log weight + Cholesky-solve log density) within a
    /// modest tolerance — the batch path whitens with a precomputed
    /// `L⁻¹` instead of solving, so agreement is relative, not bitwise —
    /// and its exp-normalized rows match the single-row responsibilities.
    #[test]
    fn batched_e_step_matches_naive(data in matrix(31, 3), w in 0.1..0.9f64, var in 0.3..2.0f64) {
        let means = Matrix::from_rows(&[
            vec![-1.0, 0.2, 0.5],
            vec![1.5, -0.4, -0.5],
        ]).unwrap();
        let gmm = Gmm::isotropic(vec![w, 1.0 - w], means, var).unwrap();
        let logs = gmm.log_densities_batch(&data);
        let resp = gmm.responsibilities_batch(&data);
        for i in 0..data.rows() {
            let x = data.row(i);
            for k in 0..2 {
                let naive = gmm.weights()[k].max(1e-300).ln() + gmm.component_log_density(k, x);
                let got = logs.get(i, k);
                prop_assert!(
                    (got - naive).abs() <= 1e-9 * naive.abs().max(1.0),
                    "log density ({}, {}): {} vs {}", i, k, got, naive
                );
            }
            let single = gmm.responsibilities(x);
            prop_assert!((resp.get(i, 0) - single[0]).abs() <= 1e-9);
            prop_assert!((resp.get(i, 1) - single[1]).abs() <= 1e-9);
            prop_assert!((resp.get(i, 0) + resp.get(i, 1) - 1.0).abs() <= 1e-12);
        }
    }

    /// A batched MLP forward row is bit-identical to the single-example
    /// forward (both reduce with the same lane-folded dot and add the bias
    /// with one IEEE addition), including on widths smaller than a lane.
    #[test]
    fn forward_batch_matches_row_forward_bitwise(x in matrix(19, 5), seed in 0u64..1_000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&mut rng, &[5, 7, 3], Activation::Relu, Activation::Sigmoid);
        let batch = mlp.forward_batch(&x);
        for i in 0..x.rows() {
            let single = mlp.forward(x.row(i));
            for (b, s) in batch.row(i).iter().zip(single.iter()) {
                prop_assert_eq!(b.to_bits(), s.to_bits());
            }
        }
    }
}
