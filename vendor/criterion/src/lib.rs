//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate reimplements the slice of the Criterion 0.5 API the
//! workspace's benches use: [`Criterion`] with `sample_size`,
//! `warm_up_time`, `measurement_time` and `bench_function`, the
//! [`Bencher::iter`] timing loop, [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the simple and
//! the `name = ...; config = ...; targets = ...` forms).
//!
//! It is a real measuring harness, not a no-op: each benchmark is warmed
//! up, then timed over `sample_size` samples, and the mean / min / max
//! nanoseconds per iteration are printed. A positional command-line
//! argument filters benchmarks by substring, so
//! `cargo bench --bench paper_tables -- table5` works as with upstream
//! Criterion. `--list` prints benchmark names without running them.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Returns its argument while preventing the optimizer from proving
/// anything about the value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times a single benchmark's iterations.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records one timing sample for the
    /// configured batch of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// The benchmark driver: configuration plus the CLI filter.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut list_only = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--list" => list_only = true,
                // Flags cargo or users pass that we accept and ignore.
                "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" | "--verbose" | "-v"
                | "--exact" | "--ignored" | "--include-ignored" => {}
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--sample-size" | "--warm-up-time" | "--profile-time" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter,
            list_only,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark is run before timing starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs (or lists, or skips) one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if self.list_only {
            println!("{id}: benchmark");
            return self;
        }

        // Warm-up: run single-iteration samples until the warm-up budget is
        // spent, to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            warm_iters += bencher.iters_per_sample;
            if bencher.samples.is_empty() {
                // The routine never called `iter`; nothing to measure.
                println!("{id}: no `iter` call in benchmark body; skipped");
                return self;
            }
            bencher.samples.clear();
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so that `sample_size` samples roughly fill the
        // measurement budget.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000_000);
        let mut bencher = Bencher {
            iters_per_sample,
            samples: Vec::with_capacity(self.sample_size),
        };
        while bencher.samples.len() < self.sample_size {
            f(&mut bencher);
        }

        let per_iter_ns: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e9 / iters_per_sample as f64)
            .collect();
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id}\n    time: [{} {} {}]  ({} samples × {} iters)",
            format_ns(min),
            format_ns(mean),
            format_ns(max),
            self.sample_size,
            iters_per_sample,
        );
        self
    }

    /// Runs the final reporting step (a no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group: a named function that runs each target
/// against a shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            sample_size: 2,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(10),
            filter: None,
            list_only: false,
        }
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut ran = 0u64;
        fast_criterion().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = fast_criterion();
        c.filter = Some("nomatch".to_string());
        let mut ran = false;
        c.bench_function("smoke", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn list_only_skips_running() {
        let mut c = fast_criterion();
        c.list_only = true;
        let mut ran = false;
        c.bench_function("smoke", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(12_300_000_000.0).ends_with("s"));
    }

    criterion_group!(simple_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_expand() {
        // `simple_group` exists and is callable; don't run it (it would
        // parse process args), just take its address.
        let _f: fn() = simple_group;
    }
}
