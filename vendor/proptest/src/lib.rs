//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate reimplements the slice of the proptest 1.x API the
//! workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for half-open ranges of every
//!   numeric type the vendored `rand` can sample,
//! * [`collection::vec`] for fixed-length vectors of a strategy,
//! * [`prelude::any`] for `bool` and the primitive numeric types,
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`) and
//!   [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is **no shrinking**: failures report the
//! case's seed and generated inputs via the panic message (every generated
//! case is deterministic given the test name, so failures reproduce
//! exactly).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::marker::PhantomData;
use std::ops::Range;

/// A source of generated values for one property-test case.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// The result of [`prelude::any`].
pub struct Any<T>(PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_any_uniform {
    ($($t:ty => $lo:expr, $hi:expr;)*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range($lo..$hi)
            }
        }
    )*};
}

impl_any_uniform! {
    f64 => -1e6, 1e6;
    f32 => -1e6f32, 1e6f32;
    usize => 0, usize::MAX;
    u64 => 0, u64::MAX;
    u32 => 0, u32::MAX;
    i64 => i64::MIN, i64::MAX;
    i32 => i32::MIN, i32::MAX;
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A strategy producing `len` independent draws from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates fixed-length vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-file configuration for the [`proptest!`] macro.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Seeds one test's generator deterministically from its name, honouring a
/// `PROPTEST_SEED` environment override for reproduction.
pub fn rng_for_test(test_name: &str) -> StdRng {
    use rand::SeedableRng;
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    // FNV-1a over the test name keeps distinct tests on distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(base ^ h)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy,
    };
    use std::marker::PhantomData;

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::Strategy,
    {
        Any(PhantomData)
    }
}

/// Asserts a property within a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality within a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($cfg:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        #[allow(unused_mut, unused_assignments)]
        fn __proptest_cases() -> u32 {
            let mut cases = $crate::ProptestConfig::default().cases;
            $(cases = ($cfg).cases;)?
            cases
        }

        $(
            $(#[$meta])*
            fn $name() {
                let cases = __proptest_cases();
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let result =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case}/{cases} failed in {} (set PROPTEST_SEED to reproduce)",
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = super::rng_for_test("range_strategy_respects_bounds");
        let s = 0.25..0.75f64;
        for _ in 0..1_000 {
            let v = super::Strategy::sample(&s, &mut rng);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_has_fixed_len() {
        let mut rng = super::rng_for_test("vec_strategy_has_fixed_len");
        let s = collection::vec(0.0..1.0f64, 17);
        assert_eq!(super::Strategy::sample(&s, &mut rng).len(), 17);
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = super::rng_for_test("prop_map_applies");
        let s = (0.0..1.0f64).prop_map(|v| v + 10.0);
        let v = super::Strategy::sample(&s, &mut rng);
        assert!((10.0..11.0).contains(&v));
    }

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = super::rng_for_test("any_bool_takes_both_values");
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64)
            .map(|_| super::Strategy::sample(&s, &mut rng))
            .collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0.0..1.0f64, n in 1usize..5usize) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }
    }
}
