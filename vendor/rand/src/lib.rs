//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate reimplements exactly the slice of the `rand` 0.8 API
//! the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (half-open ranges over floats and
//!   integers) and `gen_bool`,
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`,
//! * [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — deterministic,
//!   portable, and fast; not the upstream ChaCha12, so seeded streams differ
//!   from the real `rand` crate),
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! Everything is implemented from scratch on stable Rust with no
//! dependencies. Statistical quality is far beyond what the workspace's
//! tests require: xoshiro256++ passes BigCrush, and integer ranges use
//! Lemire's widening-multiply reduction.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that [`Rng::gen_range`] can sample uniformly.
///
/// Mirroring the real `rand` crate, this is one trait with a blanket
/// [`SampleRange`] impl over `Range<T>`, so that unsuffixed float literals
/// (`0.8..1.2`) still default to `f64` during inference.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws one uniform sample from `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// A range that [`Rng::gen_range`] can sample a single value from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    // 53 significant bits, scaled into [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        let v = start + (end - start) * f64_from_bits(rng.next_u64());
        // Guard against rounding up to `end` when the span is large.
        if v < end {
            v
        } else {
            start
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: f32, end: f32) -> f32 {
        let u = ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32);
        let v = start + (end - start) * u;
        if v < end {
            v
        } else {
            start
        }
    }
}

/// Lemire's widening-multiply reduction of a random `u64` onto `[0, span)`.
/// The residual bias is at most 2⁻⁶⁴ per draw.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end - start) as u64;
                start + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                (start as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(isize, i64, i32, i16, i8);

/// Convenience methods layered on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from the half-open `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded through SplitMix64 — the
    /// standard recommendation for seeding xoshiro-family generators.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the upstream `rand::rngs::StdRng` (ChaCha12), this is a small
    /// non-cryptographic generator; it is deterministic for a given seed and
    /// passes BigCrush, which is all the workspace relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Extension methods on slices that consume randomness.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_f64_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_usize_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_negative_ints() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(23);
        let x = draw(&mut &mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
